// Package workload synthesizes the ML storage workloads the paper
// evaluates on: the Table 1 ads schema (16,256 list<int64> columns and
// the long tail of other types), clk_seq_cids sliding windows (Figure 3),
// the skewed ad-table size census of Figure 1, Zipf-distributed sparse
// IDs, and normalized embeddings. Generators are deterministic per seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"bullion/internal/core"
	"bullion/internal/quant"
)

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	TypeName string
	Count    int
}

// Table1 is the exact column-type histogram of the paper's example ads
// Parquet file (Table 1), 17,733 columns total.
var Table1 = []Table1Row{
	{"list<int64>", 16256},
	{"list<float>", 812},
	{"list<list<int64>>", 277},
	{"struct<list<int64>, list<float>>", 143},
	{"struct<list<int64>>", 120},
	{"struct<list<binary>>", 46},
	{"struct<list<float>>", 29},
	{"struct<list<binary>, list<binary>>", 18},
	{"struct<list<double>>", 10},
	{"list<binary>", 8},
	{"struct<list<list<int64>>>", 5},
	{"struct<list<binary>, list<float>>", 5},
	{"string", 3},
	{"int64", 1},
}

// Table1Total returns the total column count of Table 1.
func Table1Total() int {
	n := 0
	for _, r := range Table1 {
		n += r.Count
	}
	return n
}

// AdsSchema generates a Bullion schema with the Table 1 type mix, scaled
// by 1/scaleDown (scaleDown=1 reproduces all 17,733 columns; struct
// columns are flattened into leaf columns, Alpha-style, so the leaf count
// exceeds the logical count for struct types). Every list<int64> feature
// column is marked Sparse when markSparse is set.
func AdsSchema(scaleDown int, markSparse bool) (*core.Schema, error) {
	if scaleDown < 1 {
		scaleDown = 1
	}
	var fields []core.Field
	add := func(name string, t core.Type, sparse bool) {
		fields = append(fields, core.Field{Name: name, Type: t, Sparse: sparse})
	}
	scaled := func(n int) int {
		s := n / scaleDown
		if s == 0 && n > 0 {
			s = 1
		}
		return s
	}
	listI64 := core.Type{Kind: core.List, Elem: core.Int64}
	listF32 := core.Type{Kind: core.List, Elem: core.Float32}
	listF64 := core.Type{Kind: core.List, Elem: core.Float64}
	listBin := core.Type{Kind: core.List, Elem: core.Binary}
	listListI64 := core.Type{Kind: core.ListList, Elem: core.Int64}

	for i := 0; i < scaled(16256); i++ {
		add(fmt.Sprintf("sparse_ids_%05d", i), listI64, markSparse)
	}
	for i := 0; i < scaled(812); i++ {
		add(fmt.Sprintf("dense_vec_%04d", i), listF32, false)
	}
	for i := 0; i < scaled(277); i++ {
		add(fmt.Sprintf("nested_ids_%03d", i), listListI64, false)
	}
	// struct<list<int64>, list<float>> flattens to two leaf columns.
	for i := 0; i < scaled(143); i++ {
		add(fmt.Sprintf("pair_%03d.ids", i), listI64, markSparse)
		add(fmt.Sprintf("pair_%03d.weights", i), listF32, false)
	}
	for i := 0; i < scaled(120); i++ {
		add(fmt.Sprintf("wrap_ids_%03d.ids", i), listI64, markSparse)
	}
	for i := 0; i < scaled(46); i++ {
		add(fmt.Sprintf("wrap_bin_%02d.blob", i), listBin, false)
	}
	for i := 0; i < scaled(29); i++ {
		add(fmt.Sprintf("wrap_vec_%02d.vec", i), listF32, false)
	}
	for i := 0; i < scaled(18); i++ {
		add(fmt.Sprintf("bin_pair_%02d.a", i), listBin, false)
		add(fmt.Sprintf("bin_pair_%02d.b", i), listBin, false)
	}
	for i := 0; i < scaled(10); i++ {
		add(fmt.Sprintf("wrap_dbl_%02d.vals", i), listF64, false)
	}
	for i := 0; i < scaled(8); i++ {
		add(fmt.Sprintf("raw_bin_%d", i), listBin, false)
	}
	for i := 0; i < scaled(5); i++ {
		add(fmt.Sprintf("deep_ids_%d.lists", i), listListI64, false)
	}
	for i := 0; i < scaled(5); i++ {
		add(fmt.Sprintf("bin_vec_%d.blob", i), listBin, false)
		add(fmt.Sprintf("bin_vec_%d.vec", i), listF32, false)
	}
	for i := 0; i < scaled(3); i++ {
		add(fmt.Sprintf("req_id_%d", i), core.Type{Kind: core.String}, false)
	}
	add("uid", core.Type{Kind: core.Int64}, false)
	return core.NewSchema(fields...)
}

// SchemaBreakdown histograms a schema by rendered type string.
func SchemaBreakdown(s *core.Schema) []Table1Row {
	counts := map[string]int{}
	var order []string
	for _, f := range s.Fields {
		k := f.Type.String()
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	out := make([]Table1Row, 0, len(order))
	for _, k := range order {
		out = append(out, Table1Row{TypeName: k, Count: counts[k]})
	}
	return out
}

// SlidingWindows generates nVectors clk_seq_cids-style vectors of the
// given width: a per-user sliding window over recently clicked ad IDs,
// with churnRate new IDs per step on average (Figure 3).
func SlidingWindows(rng *rand.Rand, nVectors, width int, churnRate float64) [][]int64 {
	out := make([][]int64, nVectors)
	window := make([]int64, width)
	for i := range window {
		window[i] = rng.Int63n(1 << 48)
	}
	for i := range out {
		churn := 0
		if rng.Float64() < churnRate {
			churn = 1 + rng.Intn(2)
		}
		for c := 0; c < churn; c++ {
			next := make([]int64, width)
			next[0] = rng.Int63n(1 << 48)
			copy(next[1:], window[:width-1])
			window = next
		}
		out[i] = append([]int64{}, window...)
	}
	return out
}

// ZipfIDs draws n sparse IDs from a Zipf distribution over a domain of
// the given cardinality — the long-tail shape of entity/interaction IDs.
func ZipfIDs(rng *rand.Rand, n int, cardinality uint64, skew float64) []int64 {
	if skew <= 1 {
		skew = 1.2
	}
	z := rand.NewZipf(rng, skew, 1, cardinality-1)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// Embeddings generates n normalized d-dimensional float32 embeddings
// (each component in (-1,1), unit-ish norm), the §2.4 quantization target.
func Embeddings(rng *rand.Rand, n, d int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		var norm float64
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			norm += float64(v[j]) * float64(v[j])
		}
		if norm > 0 {
			inv := float32(1 / math.Sqrt(norm))
			for j := range v {
				v[j] *= inv
			}
		}
		out[i] = v
	}
	return out
}

// AdsColumns generates realistic per-type content for every field of an
// AdsSchema: sliding windows for sparse sequence features, Zipf IDs for
// other ID lists, normalized embeddings for float lists, request IDs for
// strings, and a user-sorted uid column.
func AdsColumns(rng *rand.Rand, schema *core.Schema, rows int) []core.ColumnData {
	cols := make([]core.ColumnData, len(schema.Fields))
	for ci, f := range schema.Fields {
		cols[ci] = adsColumn(rng, f, rows)
	}
	return cols
}

func adsColumn(rng *rand.Rand, f core.Field, rows int) core.ColumnData {
	switch {
	case f.Sparse:
		return core.ListInt64Data(SlidingWindows(rng, rows, 32, 0.3))
	case f.Type.Kind == core.List && f.Type.Elem == core.Int64:
		out := make(core.ListInt64Data, rows)
		for i := range out {
			out[i] = ZipfIDs(rng, 4+rng.Intn(8), 1<<24, 1.3)
		}
		return out
	case f.Type.Kind == core.List && f.Type.Elem == core.Float32:
		embs := Embeddings(rng, rows, 16)
		out := make(core.ListFloat32Data, rows)
		for i := range out {
			out[i] = embs[i]
		}
		return out
	case f.Type.Kind == core.List && f.Type.Elem == core.Float64:
		out := make(core.ListFloat64Data, rows)
		for i := range out {
			v := make([]float64, 4)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			out[i] = v
		}
		return out
	case f.Type.Kind == core.List && f.Type.Elem == core.Binary:
		out := make(core.ListBytesData, rows)
		for i := range out {
			b := make([]byte, 16)
			rng.Read(b)
			out[i] = [][]byte{b}
		}
		return out
	case f.Type.Kind == core.ListList:
		out := make(core.ListListInt64Data, rows)
		for i := range out {
			out[i] = [][]int64{ZipfIDs(rng, 3, 1<<20, 1.3)}
		}
		return out
	case f.Type.Kind == core.String:
		out := make(core.BytesData, rows)
		for i := range out {
			out[i] = []byte(fmt.Sprintf("req-%016x", rng.Uint64()))
		}
		return out
	default: // int64 uid
		out := make(core.Int64Data, rows)
		for i := range out {
			out[i] = int64(i / 8)
		}
		return out
	}
}

// AdTableSize is one bar of Figure 1.
type AdTableSize struct {
	Name   string
	SizePB float64
}

// Figure1Census reproduces Figure 1's skewed top-10 ad-table size
// distribution for the CN region: the largest approaches 100 PB with a
// long concave tail, matching the shape of the published bar chart.
func Figure1Census() []AdTableSize {
	sizes := []float64{97, 82, 70, 61, 54, 48, 43, 39, 36, 33}
	out := make([]AdTableSize, len(sizes))
	for i, s := range sizes {
		out[i] = AdTableSize{Name: string(rune('A' + i)), SizePB: s}
	}
	return out
}

// QuantTargets lists the Figure 6 formats exercised by the fig6 experiment.
func QuantTargets() []quant.Format {
	return []quant.Format{quant.FP32, quant.TF32, quant.FP16, quant.BF16, quant.FP8E4M3, quant.FP8E5M2}
}
