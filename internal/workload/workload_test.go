package workload

import (
	"math"
	"math/rand"
	"testing"

	"bullion/internal/core"
	"bullion/internal/sparse"
)

func TestTable1Total(t *testing.T) {
	if got := Table1Total(); got != 17733 {
		t.Fatalf("Table1Total = %d, want 17733", got)
	}
}

// TestAdsSchemaMatchesTable1 is the tab1 experiment's correctness check:
// the full-scale generator reproduces the paper's histogram exactly at the
// logical-column level (struct columns flatten to more leaves).
func TestAdsSchemaMatchesTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full 17k-column schema")
	}
	s, err := AdsSchema(1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Count leaves per generated family prefix.
	byType := map[string]int{}
	for _, f := range s.Fields {
		byType[f.Type.String()]++
	}
	// list<int64> leaves: 16256 direct + 143 (pair .ids) + 120 (wrap) = 16519.
	if got := byType["list<int64>"]; got != 16256+143+120 {
		t.Fatalf("list<int64> leaves = %d", got)
	}
	// list<float32> leaves: 812 + 143 + 29 + 5 = 989.
	if got := byType["list<float32>"]; got != 812+143+29+5 {
		t.Fatalf("list<float32> leaves = %d", got)
	}
	if got := byType["list<list<int64>>"]; got != 277+5 {
		t.Fatalf("list<list<int64>> leaves = %d", got)
	}
	if got := byType["int64"]; got != 1 {
		t.Fatalf("int64 leaves = %d", got)
	}
	if got := byType["string"]; got != 3 {
		t.Fatalf("string leaves = %d", got)
	}
}

func TestAdsSchemaScaledDown(t *testing.T) {
	s, err := AdsSchema(100, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Fields) < 170 || len(s.Fields) > 250 {
		t.Fatalf("scaled schema has %d fields", len(s.Fields))
	}
	sparseCount := 0
	for _, f := range s.Fields {
		if f.Sparse {
			sparseCount++
			if f.Type.Kind != core.List || f.Type.Elem != core.Int64 {
				t.Fatalf("sparse flag on %v", f.Type)
			}
		}
	}
	if sparseCount == 0 {
		t.Fatal("no sparse columns marked")
	}
	breakdown := SchemaBreakdown(s)
	total := 0
	for _, r := range breakdown {
		total += r.Count
	}
	if total != len(s.Fields) {
		t.Fatalf("breakdown covers %d of %d fields", total, len(s.Fields))
	}
}

func TestSlidingWindowsOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vectors := SlidingWindows(rng, 500, 256, 0.3)
	if len(vectors) != 500 {
		t.Fatalf("generated %d vectors", len(vectors))
	}
	stats := sparse.Analyze(vectors, sparse.DefaultOptions())
	if stats.DeltaVectors*4 < stats.Vectors*3 {
		t.Fatalf("sliding windows should delta-encode: %+v", stats)
	}
	savings := 1 - float64(stats.ValuesStored)/float64(stats.ValuesTotal)
	if savings < 0.5 {
		t.Fatalf("sliding windows only save %.0f%%", savings*100)
	}
}

func TestZipfIDsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := ZipfIDs(rng, 10000, 1<<20, 1.3)
	counts := map[int64]int{}
	for _, id := range ids {
		counts[id]++
	}
	// Heavy head: the most common value appears far more than uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("Zipf head too light: max count %d", max)
	}
}

func TestEmbeddingsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	embs := Embeddings(rng, 100, 64)
	for i, v := range embs {
		var norm float64
		for _, x := range v {
			norm += float64(x) * float64(x)
			if x <= -1 || x >= 1 {
				t.Fatalf("embedding %d component %v outside (-1,1)", i, x)
			}
		}
		if math.Abs(norm-1) > 1e-3 {
			t.Fatalf("embedding %d norm %v", i, norm)
		}
	}
}

func TestFigure1CensusShape(t *testing.T) {
	census := Figure1Census()
	if len(census) != 10 {
		t.Fatalf("census has %d tables", len(census))
	}
	if census[0].SizePB < 90 || census[0].SizePB > 100 {
		t.Fatalf("largest table %v PB, want ~100", census[0].SizePB)
	}
	for i := 1; i < len(census); i++ {
		if census[i].SizePB >= census[i-1].SizePB {
			t.Fatalf("census not descending at %d", i)
		}
	}
}

func TestQuantTargets(t *testing.T) {
	if len(QuantTargets()) != 6 {
		t.Fatalf("expected 6 quant targets, got %d", len(QuantTargets()))
	}
}
