package footer

import (
	"encoding/binary"
	"fmt"
)

// View is a zero-copy reader over a serialized footer. Construction
// validates only the fixed header and section directory; every accessor
// reads directly from the underlying buffer at a computed offset. No
// per-column work happens until a column is actually looked up — the §2.3
// property that keeps wide-table projection flat in Figure 5.
type View struct {
	buf        []byte
	version    uint32
	numRows    uint64
	numColumns int
	numGroups  int
	numPages   int
	flags      uint32
	off        [numSections]int
	size       [numSections]int
}

// OpenView validates the header and returns a view. O(1) in the number of
// columns. Versions VersionMin..Version are accepted; sections a version
// predates read as absent.
func OpenView(buf []byte) (*View, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("%w: %d bytes < fixed header", ErrCorrupt, len(buf))
	}
	if string(buf[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:4])
	}
	le := binary.LittleEndian
	version := le.Uint32(buf[4:])
	if version < VersionMin || version > Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	nSec := sectionCount(version)
	if len(buf) < headerSizeFor(nSec) {
		return nil, fmt.Errorf("%w: %d bytes < header %d", ErrCorrupt, len(buf), headerSizeFor(nSec))
	}
	v := &View{
		buf:        buf,
		version:    version,
		flags:      le.Uint32(buf[8:]),
		numRows:    le.Uint64(buf[12:]),
		numColumns: int(le.Uint32(buf[20:])),
		numGroups:  int(le.Uint32(buf[24:])),
		numPages:   int(le.Uint32(buf[28:])),
	}
	const dirBase = 32
	for s := 0; s < nSec; s++ {
		off := le.Uint64(buf[dirBase+16*s:])
		sz := le.Uint64(buf[dirBase+16*s+8:])
		if off > uint64(len(buf)) || sz > uint64(len(buf))-off {
			return nil, fmt.Errorf("%w: section %d range [%d,%d) outside %d bytes",
				ErrCorrupt, s, off, off+sz, len(buf))
		}
		v.off[s] = int(off)
		v.size[s] = int(sz)
	}
	// Structural sanity for the arrays indexed arithmetic relies on.
	nChunks := v.numGroups * v.numColumns
	checks := []struct {
		sec  int
		want int
	}{
		{secPageCompression, v.numPages},
		{secRowsPerPage, 4 * v.numPages},
		{secPageOffsets, 8 * v.numPages},
		{secPagesPerGroup, 4 * v.numGroups},
		{secGroupOffsets, 8 * v.numGroups},
		{secChunkFirstPage, 4 * (nChunks + 1)},
		{secColumnOffsets, 8 * nChunks},
		{secColumnSizes, 8 * nChunks},
		{secChecksums, 8 * (v.numPages + v.numGroups + 1)},
		{secNameIndex, 12 * v.numColumns},
		{secNameOffsets, 4 * (v.numColumns + 1)},
		{secTypes, 4 * v.numColumns},
	}
	for _, c := range checks {
		if v.size[c.sec] != c.want {
			return nil, fmt.Errorf("%w: section %d is %d bytes, want %d",
				ErrCorrupt, c.sec, v.size[c.sec], c.want)
		}
	}
	// Statistics sections are optional: absent entirely or one entry per
	// page/column. Bloom offset arrays are validated lazily per access (a
	// footer open stays O(1) in columns and pages).
	if s := v.size[secPageStats]; s != 0 && s != PageStatSize*v.numPages {
		return nil, fmt.Errorf("%w: page-stats section is %d bytes, want 0 or %d",
			ErrCorrupt, s, PageStatSize*v.numPages)
	}
	if s := v.size[secColumnStats]; s != 0 && s != ColumnStatSize*v.numColumns {
		return nil, fmt.Errorf("%w: column-stats section is %d bytes, want 0 or %d",
			ErrCorrupt, s, ColumnStatSize*v.numColumns)
	}
	if s := v.size[secColumnBlooms]; s != 0 && s < 4*(v.numColumns+1) {
		return nil, fmt.Errorf("%w: column-blooms section is %d bytes, shorter than its offset array",
			ErrCorrupt, s)
	}
	if s := v.size[secPageBlooms]; s != 0 && s < 4*(v.numPages+1) {
		return nil, fmt.Errorf("%w: page-blooms section is %d bytes, shorter than its offset array",
			ErrCorrupt, s)
	}
	return v, nil
}

// Version returns the footer format version the file was written at.
func (v *View) Version() int { return int(v.version) }

// NumRows returns the row count.
func (v *View) NumRows() uint64 { return v.numRows }

// Flags returns the file-level flags.
func (v *View) Flags() uint32 { return v.flags }

// NumColumns returns the column count.
func (v *View) NumColumns() int { return v.numColumns }

// NumGroups returns the row-group count.
func (v *View) NumGroups() int { return v.numGroups }

// NumPages returns the total page count.
func (v *View) NumPages() int { return v.numPages }

func (v *View) u32(sec, i int) uint32 {
	return binary.LittleEndian.Uint32(v.buf[v.off[sec]+4*i:])
}

func (v *View) u64(sec, i int) uint64 {
	return binary.LittleEndian.Uint64(v.buf[v.off[sec]+8*i:])
}

// LookupColumn finds a column by name via the hash index: binary search on
// raw 12-byte entries, then a name confirmation against the blob (hash
// collisions chain to adjacent entries).
func (v *View) LookupColumn(name string) (int, bool) {
	h := NameHash(name)
	base := v.off[secNameIndex]
	lo, hi := 0, v.numColumns
	for lo < hi {
		mid := (lo + hi) / 2
		if binary.LittleEndian.Uint64(v.buf[base+12*mid:]) < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < v.numColumns; lo++ {
		if binary.LittleEndian.Uint64(v.buf[base+12*lo:]) != h {
			return 0, false
		}
		col := int(binary.LittleEndian.Uint32(v.buf[base+12*lo+8:]))
		if v.ColumnName(col) == name {
			return col, true
		}
	}
	return 0, false
}

// ColumnName returns the name of column c (a sub-slice view of the blob).
// Corrupt name offsets yield "" rather than a panic — the name index is
// the one section whose values OpenView does not validate eagerly.
func (v *View) ColumnName(c int) string {
	start := int(v.u32(secNameOffsets, c))
	end := int(v.u32(secNameOffsets, c+1))
	blob := v.buf[v.off[secNameBlob] : v.off[secNameBlob]+v.size[secNameBlob]]
	if start > end || end > len(blob) {
		return ""
	}
	return string(blob[start:end])
}

// ColumnType returns the 4-byte type descriptor of column c.
func (v *View) ColumnType(c int) TypeDesc {
	p := v.off[secTypes] + 4*c
	return TypeDesc{
		Kind:  Kind(v.buf[p]),
		Elem:  Kind(v.buf[p+1]),
		Quant: v.buf[p+2],
		Flags: v.buf[p+3],
	}
}

// ChunkIndex returns the flat chunk index for (group, column).
func (v *View) ChunkIndex(group, col int) int { return group*v.numColumns + col }

// ChunkByteRange returns the file byte range of one column chunk — the
// paper's "byte ranges for each column are identified via an offsets
// array, followed by a targeted pread()".
func (v *View) ChunkByteRange(group, col int) (offset, size uint64) {
	i := v.ChunkIndex(group, col)
	return v.u64(secColumnOffsets, i), v.u64(secColumnSizes, i)
}

// ChunkPages returns the [first, first+count) global page index range of a
// chunk.
func (v *View) ChunkPages(group, col int) (first, count int) {
	i := v.ChunkIndex(group, col)
	f := int(v.u32(secChunkFirstPage, i))
	n := int(v.u32(secChunkFirstPage, i+1)) - f
	return f, n
}

// PageOffset returns the file offset of global page p.
func (v *View) PageOffset(p int) uint64 { return v.u64(secPageOffsets, p) }

// PageRows returns the row count of global page p.
func (v *View) PageRows(p int) int { return int(v.u32(secRowsPerPage, p)) }

// PageCompression returns the cascade scheme id recorded for page p.
func (v *View) PageCompression(p int) uint8 {
	return v.buf[v.off[secPageCompression]+p]
}

// GroupOffset returns the file offset of row group g.
func (v *View) GroupOffset(g int) uint64 { return v.u64(secGroupOffsets, g) }

// GroupPages returns the page count of row group g.
func (v *View) GroupPages(g int) int { return int(v.u32(secPagesPerGroup, g)) }

// DeletionWord returns word w of the deletion bitmap.
func (v *View) DeletionWord(w int) uint64 { return v.u64(secDeletionVec, w) }

// DeletionWords returns the deletion bitmap length in words.
func (v *View) DeletionWords() int { return v.size[secDeletionVec] / 8 }

// RowDeleted reports whether global row r is marked deleted.
func (v *View) RowDeleted(r uint64) bool {
	w := int(r >> 6)
	if w >= v.DeletionWords() {
		return false
	}
	return v.u64(secDeletionVec, w)&(1<<(r&63)) != 0
}

// HasPageStats reports whether the file recorded per-page zone maps.
func (v *View) HasPageStats() bool { return v.size[secPageStats] != 0 }

// PageStat returns the zone map of global page p. ok is false when the
// writer recorded no statistics section; a present entry may still have
// zero flags (no usable bounds for that page).
func (v *View) PageStat(p int) (PageStat, bool) {
	if !v.HasPageStats() {
		return PageStat{}, false
	}
	base := v.off[secPageStats] + PageStatSize*p
	le := binary.LittleEndian
	return PageStat{
		Min:       int64(le.Uint64(v.buf[base:])),
		Max:       int64(le.Uint64(v.buf[base+8:])),
		NullCount: le.Uint32(v.buf[base+16:]),
		Flags:     le.Uint32(v.buf[base+20:]),
	}, true
}

// HasColumnStats reports whether the file recorded file-level column zone
// maps (v3 writers always do).
func (v *View) HasColumnStats() bool { return v.size[secColumnStats] != 0 }

// ColumnStat returns the file-level zone map of column c, or ok=false
// when the writer recorded no column-stats section (v2 files).
func (v *View) ColumnStat(c int) (ColumnStat, bool) {
	if !v.HasColumnStats() {
		return ColumnStat{}, false
	}
	base := v.off[secColumnStats] + ColumnStatSize*c
	le := binary.LittleEndian
	return ColumnStat{
		Min:       int64(le.Uint64(v.buf[base:])),
		Max:       int64(le.Uint64(v.buf[base+8:])),
		NullCount: le.Uint64(v.buf[base+16:]),
		Flags:     le.Uint32(v.buf[base+24:]),
	}, true
}

// framedEntry slices entry i out of a framed blob section (u32 offsets,
// then blob), returning nil for absent sections, empty entries, or
// corrupt offsets — a bad filter must read as "no filter", never panic.
func (v *View) framedEntry(sec, i, n int) []byte {
	size := v.size[sec]
	if size == 0 {
		return nil
	}
	base := v.off[sec]
	blobLen := size - 4*(n+1)
	le := binary.LittleEndian
	lo := int(le.Uint32(v.buf[base+4*i:]))
	hi := int(le.Uint32(v.buf[base+4*(i+1):]))
	if lo > hi || hi > blobLen {
		return nil
	}
	blobBase := base + 4*(n+1)
	return v.buf[blobBase+lo : blobBase+hi]
}

// ColumnBloom returns column c's serialized bloom filter, or nil when the
// file recorded none for it (non-byte-string columns, disabled blooms,
// v2 files).
func (v *View) ColumnBloom(c int) []byte {
	return v.framedEntry(secColumnBlooms, c, v.numColumns)
}

// PageBloom returns global page p's serialized bloom filter, or nil.
func (v *View) PageBloom(p int) []byte {
	return v.framedEntry(secPageBlooms, p, v.numPages)
}

// Checksum returns entry i of the checksum section (pages, then groups,
// then root).
func (v *View) Checksum(i int) uint64 { return v.u64(secChecksums, i) }

// RootChecksum returns the Merkle root.
func (v *View) RootChecksum() uint64 {
	return v.Checksum(v.numPages + v.numGroups)
}

// Materialize fully decodes the footer for mutation (the deletion path
// rewrites the deletion vector and checksums). Readers should stay on the
// View.
func (v *View) Materialize() (*Footer, error) {
	nChunks := v.numGroups * v.numColumns
	f := &Footer{
		Version:         v.version,
		NumRows:         v.numRows,
		NumColumns:      v.numColumns,
		NumGroups:       v.numGroups,
		Flags:           v.flags,
		PageCompression: append([]uint8(nil), v.buf[v.off[secPageCompression]:v.off[secPageCompression]+v.numPages]...),
		RowsPerPage:     make([]uint32, v.numPages),
		PageOffsets:     make([]uint64, v.numPages),
		PagesPerGroup:   make([]uint32, v.numGroups),
		GroupOffsets:    make([]uint64, v.numGroups),
		ChunkFirstPage:  make([]uint32, nChunks+1),
		ColumnOffsets:   make([]uint64, nChunks),
		ColumnSizes:     make([]uint64, nChunks),
		DeletionVec:     make([]uint64, v.DeletionWords()),
		Checksums:       make([]uint64, v.numPages+v.numGroups+1),
		Columns:         make([]Column, v.numColumns),
	}
	for i := range f.RowsPerPage {
		f.RowsPerPage[i] = v.u32(secRowsPerPage, i)
		f.PageOffsets[i] = v.u64(secPageOffsets, i)
	}
	for i := range f.PagesPerGroup {
		f.PagesPerGroup[i] = v.u32(secPagesPerGroup, i)
		f.GroupOffsets[i] = v.u64(secGroupOffsets, i)
	}
	for i := range f.ChunkFirstPage {
		f.ChunkFirstPage[i] = v.u32(secChunkFirstPage, i)
	}
	for i := 0; i < nChunks; i++ {
		f.ColumnOffsets[i] = v.u64(secColumnOffsets, i)
		f.ColumnSizes[i] = v.u64(secColumnSizes, i)
	}
	for i := range f.DeletionVec {
		f.DeletionVec[i] = v.u64(secDeletionVec, i)
	}
	for i := range f.Checksums {
		f.Checksums[i] = v.u64(secChecksums, i)
	}
	for i := range f.Columns {
		f.Columns[i] = Column{Name: v.ColumnName(i), Type: v.ColumnType(i)}
	}
	if v.HasPageStats() {
		f.PageStats = make([]PageStat, v.numPages)
		for i := range f.PageStats {
			f.PageStats[i], _ = v.PageStat(i)
		}
	}
	if v.HasColumnStats() {
		f.ColumnStats = make([]ColumnStat, v.numColumns)
		for i := range f.ColumnStats {
			f.ColumnStats[i], _ = v.ColumnStat(i)
		}
	}
	if v.size[secColumnBlooms] != 0 {
		f.ColumnBlooms = make([][]byte, v.numColumns)
		for i := range f.ColumnBlooms {
			f.ColumnBlooms[i] = append([]byte(nil), v.ColumnBloom(i)...)
		}
	}
	if v.size[secPageBlooms] != 0 {
		f.PageBlooms = make([][]byte, v.numPages)
		for i := range f.PageBlooms {
			f.PageBlooms[i] = append([]byte(nil), v.PageBloom(i)...)
		}
	}
	return f, nil
}
