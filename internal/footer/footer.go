// Package footer implements Bullion's compact binary footer (paper §2.3).
//
// The paper's BullionFooter table is serialized as raw little-endian
// arrays behind a fixed section directory — the Cap'n-Proto/FlatBuffers
// idea: values are read directly from the buffer at computed offsets, with
// no deserialization pass. Opening a footer is O(1); locating one column
// among tens of thousands is a binary search over a name-hash index
// (O(log n), a handful of 12-byte probes). That is what keeps Figure 5's
// Bullion line flat while Parquet-style footers parse every column's
// metadata before the first byte of data can be located.
//
//	Footer := magic "BFTR" version(u32) numRows(u64)
//	          numColumns(u32) numGroups(u32) numPages(u32)
//	          directory[15] of (offset u64, byteLen u64)
//	          sections...
//
// Sections (faithful to the paper's BullionFooter fields, widened to u64
// where production file sizes would overflow the sketch's u32):
//
//	 0 page_compression_types  u8[numPages]
//	 1 rows_per_page           u32[numPages]
//	 2 page_offsets            u64[numPages]
//	 3 pages_per_group         u32[numGroups]
//	 4 group_offsets           u64[numGroups]
//	 5 chunk_first_page        u32[numGroups*numColumns + 1]
//	 6 column_offsets          u64[numGroups*numColumns]   (per chunk)
//	 7 column_sizes            u64[numGroups*numColumns]   (per chunk)
//	 8 deletion_vec            u64[ceil(numRows/64)]
//	 9 checksums               u64[numPages + numGroups + 1]
//	10 name_index              (hash u64, col u32)[numColumns], hash-sorted
//	11 name_offsets            u32[numColumns + 1]
//	12 name_blob               bytes
//	13 types                   u8[4*numColumns]
//	14 page_stats              24 bytes per page (min i64, max i64,
//	                           nullCount u32, flags u32) or empty when the
//	                           writer recorded no statistics
//
// Version 3 appends three statistics sections (all optional — empty when
// the writer recorded nothing for them). Page and column min/max entries
// carry float bounds as math.Float64bits patterns flagged StatFloatBits;
// int64/int32 bounds stay native. Bloom sections hold one serialized
// split-block bloom filter (internal/enc, "SBF1") per byte-string column
// or page, framed by a u32 offset array; entries of other columns/pages
// are zero-length:
//
//	15 column_stats            32 bytes per column (min u64, max u64,
//	                           nullCount u64, flags u32, reserved u32)
//	16 column_blooms           u32 offsets[numColumns + 1], then blob
//	17 page_blooms             u32 offsets[numPages + 1], then blob
//
// Version 2 files (no statistics sections beyond page_stats, int bounds
// only) remain fully readable; the new accessors report "no statistics"
// for them.
package footer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Magic marks the start of a serialized footer.
const Magic = "BFTR"

// Version is the current footer format version. Version 2 added the
// page_stats section (min/max/null zone maps consumed by the scanner's
// page-skipping path); version 3 added float zone maps (StatFloatBits),
// file-level column_stats, and the column/page bloom sections. Version 2
// files are still read (VersionMin); the statistics accessors simply
// report nothing for the sections they predate. v1 footers are rejected —
// no v1 files exist outside this repository's own history.
const Version = 3

// VersionMin is the oldest footer version OpenView accepts.
const VersionMin = 2

// numSections is the section count of the current version; older accepted
// versions have a shorter directory (sectionCount).
const numSections = 18

const numSectionsV2 = 15

// sectionCount returns the directory length of a footer version.
func sectionCount(version uint32) int {
	if version <= 2 {
		return numSectionsV2
	}
	return numSections
}

const (
	secPageCompression = iota
	secRowsPerPage
	secPageOffsets
	secPagesPerGroup
	secGroupOffsets
	secChunkFirstPage
	secColumnOffsets
	secColumnSizes
	secDeletionVec
	secChecksums
	secNameIndex
	secNameOffsets
	secNameBlob
	secTypes
	secPageStats
	secColumnStats
	secColumnBlooms
	secPageBlooms
)

// PageStatSize is the fixed on-disk size of one PageStat entry.
const PageStatSize = 24

// ColumnStatSize is the fixed on-disk size of one ColumnStat entry.
const ColumnStatSize = 32

// PageStat / ColumnStat flag bits.
const (
	// StatHasMinMax marks Min/Max as valid bounds over the entry's non-null
	// values.
	StatHasMinMax = 1 << 0
	// StatHasNullCount marks NullCount as valid.
	StatHasNullCount = 1 << 1
	// StatFloatBits marks Min/Max as math.Float64bits patterns of float64
	// bounds (compare as floats, not as int64). Set for float64/float32
	// columns; without it bounds are native int64 order.
	StatFloatBits = 1 << 2
)

// PageStat is the per-page zone map: value bounds and null count. A page
// whose flags are zero carries no usable statistics and is never skipped.
type PageStat struct {
	Min, Max  int64
	NullCount uint32
	Flags     uint32
}

// ColumnStat is the file-level zone map of one column: the fold of its
// page statistics, computed by the writer so readers (and the dataset
// manifest) get file-level bounds without walking pages.
type ColumnStat struct {
	Min, Max  int64
	NullCount uint64
	Flags     uint32
}

// headerSizeFor is the fixed prefix before the sections begin:
// magic, version, flags, numRows, numColumns, numGroups, numPages,
// section directory.
func headerSizeFor(nSec int) int { return 4 + 4 + 4 + 8 + 4 + 4 + 4 + nSec*16 }

// ErrCorrupt reports a malformed footer.
var ErrCorrupt = errors.New("footer: corrupt")

// Kind is a column's physical type family.
type Kind uint8

// Column kinds. List nesting is expressed through TypeDesc.Elem; struct
// columns are flattened into leaf columns ("a.b") before reaching the
// footer, following Alpha-style feature flattening.
const (
	KindInvalid Kind = iota
	KindInt64
	KindInt32
	KindFloat64
	KindFloat32
	KindFloat16
	KindBFloat16
	KindFP8
	KindBool
	KindBinary
	KindString
	KindList     // Elem is the element kind
	KindListList // Elem is the leaf element kind (list<list<elem>>)
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid", KindInt64: "int64", KindInt32: "int32",
	KindFloat64: "float64", KindFloat32: "float32", KindFloat16: "float16",
	KindBFloat16: "bfloat16", KindFP8: "fp8", KindBool: "bool",
	KindBinary: "binary", KindString: "string", KindList: "list",
	KindListList: "list<list>",
}

// String returns the kind name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TypeDesc is the fixed 4-byte type descriptor stored per column.
type TypeDesc struct {
	Kind  Kind
	Elem  Kind  // element kind for lists
	Quant uint8 // quant.Format the column is stored in (0 = native)
	Flags uint8 // reserved
}

// String renders the descriptor ("list<int64>", "float32[fp16]", ...).
func (t TypeDesc) String() string {
	var s string
	switch t.Kind {
	case KindList:
		s = "list<" + t.Elem.String() + ">"
	case KindListList:
		s = "list<list<" + t.Elem.String() + ">>"
	default:
		s = t.Kind.String()
	}
	if t.Quant != 0 {
		s += fmt.Sprintf("[q%d]", t.Quant)
	}
	return s
}

// Column describes one flattened leaf column.
type Column struct {
	Name string
	Type TypeDesc
}

// Footer is the materialized (mutable) footer used by the writer and the
// deletion path. Readers normally use View and never materialize.
type Footer struct {
	// Version selects the serialized format (0 means current). The deletion
	// path materializes and re-marshals in place, so a v2 file must
	// round-trip as v2 — Materialize preserves the source version.
	Version         uint32
	NumRows         uint64
	NumColumns      int
	NumGroups       int
	Flags           uint32  // file-level flags (core records the compliance level here)
	PageCompression []uint8 // cascade scheme id per page
	RowsPerPage     []uint32
	PageOffsets     []uint64
	PagesPerGroup   []uint32
	GroupOffsets    []uint64
	ChunkFirstPage  []uint32 // numGroups*numColumns + 1 entries
	ColumnOffsets   []uint64 // per chunk, row-major (g*numColumns + c)
	ColumnSizes     []uint64
	DeletionVec     []uint64
	Checksums       []uint64 // page leaves, then group hashes, then root
	Columns         []Column
	// PageStats holds one zone map per page (global page order). Either
	// empty (no statistics recorded) or exactly one entry per page.
	PageStats []PageStat
	// ColumnStats holds the file-level zone map per column. Either empty
	// or exactly one entry per column (v3).
	ColumnStats []ColumnStat
	// ColumnBlooms / PageBlooms hold one serialized bloom filter per
	// column / page; nil entries (columns or pages without a filter) are
	// written zero-length. Either empty or exactly one entry per
	// column/page (v3).
	ColumnBlooms [][]byte
	PageBlooms   [][]byte
}

// NameHash is the hash used by the column-name index.
func NameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Marshal serializes the footer.
func (f *Footer) Marshal() ([]byte, error) {
	nPages := len(f.PageOffsets)
	nChunks := f.NumGroups * f.NumColumns
	if len(f.PageCompression) != nPages || len(f.RowsPerPage) != nPages {
		return nil, fmt.Errorf("footer: page array lengths disagree: %d offsets, %d compression, %d rows",
			nPages, len(f.PageCompression), len(f.RowsPerPage))
	}
	if len(f.PagesPerGroup) != f.NumGroups || len(f.GroupOffsets) != f.NumGroups {
		return nil, fmt.Errorf("footer: group array lengths disagree")
	}
	if len(f.ChunkFirstPage) != nChunks+1 {
		return nil, fmt.Errorf("footer: chunk index has %d entries, want %d", len(f.ChunkFirstPage), nChunks+1)
	}
	if len(f.ColumnOffsets) != nChunks || len(f.ColumnSizes) != nChunks {
		return nil, fmt.Errorf("footer: chunk offset/size arrays disagree")
	}
	if len(f.Columns) != f.NumColumns {
		return nil, fmt.Errorf("footer: %d column descriptors, want %d", len(f.Columns), f.NumColumns)
	}
	if want := nPages + f.NumGroups + 1; len(f.Checksums) != want {
		return nil, fmt.Errorf("footer: %d checksums, want %d", len(f.Checksums), want)
	}
	if len(f.PageStats) != 0 && len(f.PageStats) != nPages {
		return nil, fmt.Errorf("footer: %d page stats, want 0 or %d", len(f.PageStats), nPages)
	}
	version := f.Version
	if version == 0 {
		version = Version
	}
	if version < VersionMin || version > Version {
		return nil, fmt.Errorf("footer: cannot marshal version %d", version)
	}
	if version < 3 && (len(f.ColumnStats) != 0 || len(f.ColumnBlooms) != 0 || len(f.PageBlooms) != 0) {
		return nil, fmt.Errorf("footer: version %d cannot carry column stats or blooms", version)
	}
	if len(f.ColumnStats) != 0 && len(f.ColumnStats) != f.NumColumns {
		return nil, fmt.Errorf("footer: %d column stats, want 0 or %d", len(f.ColumnStats), f.NumColumns)
	}
	if len(f.ColumnBlooms) != 0 && len(f.ColumnBlooms) != f.NumColumns {
		return nil, fmt.Errorf("footer: %d column blooms, want 0 or %d", len(f.ColumnBlooms), f.NumColumns)
	}
	if len(f.PageBlooms) != 0 && len(f.PageBlooms) != nPages {
		return nil, fmt.Errorf("footer: %d page blooms, want 0 or %d", len(f.PageBlooms), nPages)
	}
	nSec := sectionCount(version)

	// Name index, offsets, blob.
	type hashEntry struct {
		hash uint64
		col  uint32
	}
	idx := make([]hashEntry, f.NumColumns)
	nameOffsets := make([]uint32, f.NumColumns+1)
	var blob []byte
	for i, c := range f.Columns {
		idx[i] = hashEntry{NameHash(c.Name), uint32(i)}
		nameOffsets[i] = uint32(len(blob))
		blob = append(blob, c.Name...)
	}
	nameOffsets[f.NumColumns] = uint32(len(blob))
	sort.Slice(idx, func(a, b int) bool {
		if idx[a].hash != idx[b].hash {
			return idx[a].hash < idx[b].hash
		}
		return idx[a].col < idx[b].col
	})

	// Compute section sizes.
	sizes := [numSections]int{
		secPageCompression: nPages,
		secRowsPerPage:     4 * nPages,
		secPageOffsets:     8 * nPages,
		secPagesPerGroup:   4 * f.NumGroups,
		secGroupOffsets:    8 * f.NumGroups,
		secChunkFirstPage:  4 * (nChunks + 1),
		secColumnOffsets:   8 * nChunks,
		secColumnSizes:     8 * nChunks,
		secDeletionVec:     8 * len(f.DeletionVec),
		secChecksums:       8 * len(f.Checksums),
		secNameIndex:       12 * f.NumColumns,
		secNameOffsets:     4 * (f.NumColumns + 1),
		secNameBlob:        len(blob),
		secTypes:           4 * f.NumColumns,
		secPageStats:       PageStatSize * len(f.PageStats),
	}
	if version >= 3 {
		sizes[secColumnStats] = ColumnStatSize * len(f.ColumnStats)
		sizes[secColumnBlooms] = framedSize(f.ColumnBlooms)
		sizes[secPageBlooms] = framedSize(f.PageBlooms)
	}
	total := headerSizeFor(nSec)
	var offsets [numSections]int
	for s := 0; s < nSec; s++ {
		offsets[s] = total
		total += sizes[s]
	}

	out := make([]byte, total)
	copy(out, Magic)
	le := binary.LittleEndian
	le.PutUint32(out[4:], version)
	le.PutUint32(out[8:], f.Flags)
	le.PutUint64(out[12:], f.NumRows)
	le.PutUint32(out[20:], uint32(f.NumColumns))
	le.PutUint32(out[24:], uint32(f.NumGroups))
	le.PutUint32(out[28:], uint32(nPages))
	const dirBase = 32
	for s := 0; s < nSec; s++ {
		le.PutUint64(out[dirBase+16*s:], uint64(offsets[s]))
		le.PutUint64(out[dirBase+16*s+8:], uint64(sizes[s]))
	}

	copy(out[offsets[secPageCompression]:], f.PageCompression)
	putU32s(out[offsets[secRowsPerPage]:], f.RowsPerPage)
	putU64s(out[offsets[secPageOffsets]:], f.PageOffsets)
	putU32s(out[offsets[secPagesPerGroup]:], f.PagesPerGroup)
	putU64s(out[offsets[secGroupOffsets]:], f.GroupOffsets)
	putU32s(out[offsets[secChunkFirstPage]:], f.ChunkFirstPage)
	putU64s(out[offsets[secColumnOffsets]:], f.ColumnOffsets)
	putU64s(out[offsets[secColumnSizes]:], f.ColumnSizes)
	putU64s(out[offsets[secDeletionVec]:], f.DeletionVec)
	putU64s(out[offsets[secChecksums]:], f.Checksums)
	for i, e := range idx {
		le.PutUint64(out[offsets[secNameIndex]+12*i:], e.hash)
		le.PutUint32(out[offsets[secNameIndex]+12*i+8:], e.col)
	}
	putU32s(out[offsets[secNameOffsets]:], nameOffsets)
	copy(out[offsets[secNameBlob]:], blob)
	for i, c := range f.Columns {
		p := offsets[secTypes] + 4*i
		out[p] = byte(c.Type.Kind)
		out[p+1] = byte(c.Type.Elem)
		out[p+2] = c.Type.Quant
		out[p+3] = c.Type.Flags
	}
	for i, st := range f.PageStats {
		p := offsets[secPageStats] + PageStatSize*i
		le.PutUint64(out[p:], uint64(st.Min))
		le.PutUint64(out[p+8:], uint64(st.Max))
		le.PutUint32(out[p+16:], st.NullCount)
		le.PutUint32(out[p+20:], st.Flags)
	}
	if version >= 3 {
		for i, st := range f.ColumnStats {
			p := offsets[secColumnStats] + ColumnStatSize*i
			le.PutUint64(out[p:], uint64(st.Min))
			le.PutUint64(out[p+8:], uint64(st.Max))
			le.PutUint64(out[p+16:], st.NullCount)
			le.PutUint32(out[p+24:], st.Flags)
		}
		putFramed(out[offsets[secColumnBlooms]:offsets[secColumnBlooms]+sizes[secColumnBlooms]], f.ColumnBlooms)
		putFramed(out[offsets[secPageBlooms]:offsets[secPageBlooms]+sizes[secPageBlooms]], f.PageBlooms)
	}
	return out, nil
}

// framedSize is the serialized size of a variable-length blob section:
// a u32 offset array (n+1 entries) followed by the concatenated blobs.
// An all-empty (or empty) slice serializes to nothing.
func framedSize(blobs [][]byte) int {
	if len(blobs) == 0 {
		return 0
	}
	total := 0
	for _, b := range blobs {
		total += len(b)
	}
	if total == 0 {
		return 0
	}
	return 4*(len(blobs)+1) + total
}

// putFramed writes the offset array + blob layout into dst (sized by
// framedSize; a zero-length dst means the section is absent).
func putFramed(dst []byte, blobs [][]byte) {
	if len(dst) == 0 {
		return
	}
	le := binary.LittleEndian
	pos := 0
	for i, b := range blobs {
		le.PutUint32(dst[4*i:], uint32(pos))
		pos += len(b)
	}
	le.PutUint32(dst[4*len(blobs):], uint32(pos))
	base := 4 * (len(blobs) + 1)
	pos = 0
	for _, b := range blobs {
		copy(dst[base+pos:], b)
		pos += len(b)
	}
}

func putU32s(dst []byte, vs []uint32) {
	for i, v := range vs {
		binary.LittleEndian.PutUint32(dst[4*i:], v)
	}
}

func putU64s(dst []byte, vs []uint64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[8*i:], v)
	}
}
