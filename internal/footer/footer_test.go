package footer

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFooter constructs a consistent footer with nCols columns, nGroups
// groups, and pagesPerChunk pages per column chunk.
func buildFooter(nCols, nGroups, pagesPerChunk int) *Footer {
	nChunks := nCols * nGroups
	nPages := nChunks * pagesPerChunk
	f := &Footer{
		NumRows:         uint64(nGroups * 1000),
		NumColumns:      nCols,
		NumGroups:       nGroups,
		PageCompression: make([]uint8, nPages),
		RowsPerPage:     make([]uint32, nPages),
		PageOffsets:     make([]uint64, nPages),
		PagesPerGroup:   make([]uint32, nGroups),
		GroupOffsets:    make([]uint64, nGroups),
		ChunkFirstPage:  make([]uint32, nChunks+1),
		ColumnOffsets:   make([]uint64, nChunks),
		ColumnSizes:     make([]uint64, nChunks),
		DeletionVec:     make([]uint64, (nGroups*1000+63)/64),
		Checksums:       make([]uint64, nPages+nGroups+1),
		Columns:         make([]Column, nCols),
	}
	off := uint64(0)
	for p := 0; p < nPages; p++ {
		f.PageCompression[p] = uint8(p % 7)
		f.RowsPerPage[p] = 1000 / uint32(pagesPerChunk)
		f.PageOffsets[p] = off
		off += 4096
		f.Checksums[p] = uint64(p) * 77
	}
	for g := 0; g < nGroups; g++ {
		f.PagesPerGroup[g] = uint32(nCols * pagesPerChunk)
		f.GroupOffsets[g] = uint64(g) * uint64(nCols*pagesPerChunk) * 4096
		f.Checksums[nPages+g] = uint64(g) * 13
	}
	f.Checksums[nPages+nGroups] = 0xDEADBEEF // root
	for i := 0; i <= nChunks; i++ {
		f.ChunkFirstPage[i] = uint32(i * pagesPerChunk)
	}
	for i := 0; i < nChunks; i++ {
		f.ColumnOffsets[i] = uint64(i) * uint64(pagesPerChunk) * 4096
		f.ColumnSizes[i] = uint64(pagesPerChunk) * 4096
	}
	for c := 0; c < nCols; c++ {
		f.Columns[c] = Column{
			Name: fmt.Sprintf("feat_%06d", c),
			Type: TypeDesc{Kind: KindList, Elem: KindInt64},
		}
	}
	return f
}

func TestMarshalOpenRoundTrip(t *testing.T) {
	f := buildFooter(50, 3, 2)
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != f.NumRows || v.NumColumns() != 50 || v.NumGroups() != 3 {
		t.Fatalf("header: rows=%d cols=%d groups=%d", v.NumRows(), v.NumColumns(), v.NumGroups())
	}
	if v.NumPages() != len(f.PageOffsets) {
		t.Fatalf("pages = %d, want %d", v.NumPages(), len(f.PageOffsets))
	}
	for p := range f.PageOffsets {
		if v.PageOffset(p) != f.PageOffsets[p] {
			t.Fatalf("page %d offset mismatch", p)
		}
		if v.PageCompression(p) != f.PageCompression[p] {
			t.Fatalf("page %d compression mismatch", p)
		}
		if uint32(v.PageRows(p)) != f.RowsPerPage[p] {
			t.Fatalf("page %d rows mismatch", p)
		}
	}
	for c := 0; c < 50; c++ {
		if got := v.ColumnName(c); got != f.Columns[c].Name {
			t.Fatalf("column %d name %q, want %q", c, got, f.Columns[c].Name)
		}
		if got := v.ColumnType(c); got != f.Columns[c].Type {
			t.Fatalf("column %d type %v, want %v", c, got, f.Columns[c].Type)
		}
	}
	if v.RootChecksum() != 0xDEADBEEF {
		t.Fatalf("root checksum %x", v.RootChecksum())
	}
}

func TestLookupColumn(t *testing.T) {
	f := buildFooter(1000, 2, 1)
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{0, 1, 499, 998, 999} {
		got, ok := v.LookupColumn(f.Columns[c].Name)
		if !ok || got != c {
			t.Fatalf("LookupColumn(%q) = (%d,%v), want (%d,true)", f.Columns[c].Name, got, ok, c)
		}
	}
	if _, ok := v.LookupColumn("no_such_feature"); ok {
		t.Fatal("found a nonexistent column")
	}
}

func TestChunkGeometry(t *testing.T) {
	f := buildFooter(10, 4, 3)
	buf, _ := f.Marshal()
	v, err := OpenView(buf)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		for c := 0; c < 10; c++ {
			i := v.ChunkIndex(g, c)
			off, size := v.ChunkByteRange(g, c)
			if off != f.ColumnOffsets[i] || size != f.ColumnSizes[i] {
				t.Fatalf("chunk (%d,%d) range (%d,%d), want (%d,%d)",
					g, c, off, size, f.ColumnOffsets[i], f.ColumnSizes[i])
			}
			first, count := v.ChunkPages(g, c)
			if first != i*3 || count != 3 {
				t.Fatalf("chunk (%d,%d) pages (%d,%d), want (%d,3)", g, c, first, count, i*3)
			}
		}
	}
}

func TestDeletionVec(t *testing.T) {
	f := buildFooter(5, 1, 1)
	f.DeletionVec[0] = 1 | 1<<63 // rows 0 and 63 deleted
	buf, _ := f.Marshal()
	v, err := OpenView(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !v.RowDeleted(0) || !v.RowDeleted(63) {
		t.Fatal("deleted rows not reported")
	}
	if v.RowDeleted(1) || v.RowDeleted(64) {
		t.Fatal("live rows reported deleted")
	}
	if v.RowDeleted(1 << 40) { // far out of range
		t.Fatal("out-of-range row reported deleted")
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	f := buildFooter(20, 3, 2)
	f.DeletionVec[0] = 42
	buf, _ := f.Marshal()
	v, err := OpenView(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("materialize→marshal is not the identity")
	}
}

// TestStatsSectionsRoundTrip covers the v3 statistics sections: column
// stats, column blooms, and page blooms survive Marshal/OpenView and
// Materialize reproduces the exact bytes.
func TestStatsSectionsRoundTrip(t *testing.T) {
	f := buildFooter(6, 2, 2)
	nPages := len(f.PageOffsets)
	f.PageStats = make([]PageStat, nPages)
	for p := range f.PageStats {
		f.PageStats[p] = PageStat{Min: int64(-p), Max: int64(p * 10), NullCount: uint32(p), Flags: StatHasMinMax | StatHasNullCount}
	}
	f.ColumnStats = make([]ColumnStat, 6)
	for c := range f.ColumnStats {
		flags := uint32(StatHasMinMax | StatHasNullCount)
		if c == 2 {
			flags |= StatFloatBits
		}
		f.ColumnStats[c] = ColumnStat{Min: int64(c), Max: int64(c + 100), NullCount: uint64(c), Flags: flags}
	}
	f.ColumnBlooms = make([][]byte, 6)
	f.ColumnBlooms[1] = []byte("bloom-one")
	f.ColumnBlooms[4] = []byte("bloom-four")
	f.PageBlooms = make([][]byte, nPages)
	f.PageBlooms[0] = []byte("pb0")
	f.PageBlooms[nPages-1] = []byte("pb-last")

	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v.Version() != Version {
		t.Fatalf("version = %d, want %d", v.Version(), Version)
	}
	if !v.HasColumnStats() {
		t.Fatal("column stats lost")
	}
	for c := range f.ColumnStats {
		got, ok := v.ColumnStat(c)
		if !ok || got != f.ColumnStats[c] {
			t.Fatalf("column %d stat = %+v (%v), want %+v", c, got, ok, f.ColumnStats[c])
		}
	}
	for c := range f.ColumnBlooms {
		if got := string(v.ColumnBloom(c)); got != string(f.ColumnBlooms[c]) {
			t.Fatalf("column %d bloom = %q, want %q", c, got, f.ColumnBlooms[c])
		}
	}
	for p := range f.PageBlooms {
		if got := string(v.PageBloom(p)); got != string(f.PageBlooms[p]) {
			t.Fatalf("page %d bloom = %q, want %q", p, got, f.PageBlooms[p])
		}
	}
	m, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("materialize→marshal is not the identity with stats sections")
	}
}

// TestV2RoundTrip pins backward compatibility: a footer marshaled at
// version 2 (15 sections, no column stats or blooms) opens, reports no v3
// statistics, and re-marshals byte-identically through Materialize — the
// invariant the in-place deletion path needs on old files.
func TestV2RoundTrip(t *testing.T) {
	f := buildFooter(8, 2, 1)
	f.Version = 2
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v.Version() != 2 {
		t.Fatalf("version = %d, want 2", v.Version())
	}
	if v.HasColumnStats() {
		t.Fatal("v2 footer reports column stats")
	}
	if v.ColumnBloom(0) != nil || v.PageBloom(0) != nil {
		t.Fatal("v2 footer reports blooms")
	}
	if _, ok := v.ColumnStat(0); ok {
		t.Fatal("v2 ColumnStat ok")
	}
	m, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Fatalf("materialized version = %d, want 2", m.Version)
	}
	buf2, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("v2 materialize→marshal is not the identity")
	}
	// v2 cannot carry the new sections.
	m.ColumnStats = make([]ColumnStat, 8)
	if _, err := m.Marshal(); err == nil {
		t.Fatal("v2 footer with column stats accepted")
	}
}

func TestOpenViewRejectsCorrupt(t *testing.T) {
	f := buildFooter(5, 1, 1)
	buf, _ := f.Marshal()
	cases := map[string]func() []byte{
		"short":       func() []byte { return buf[:10] },
		"bad magic":   func() []byte { b := append([]byte{}, buf...); b[0] = 'X'; return b },
		"bad version": func() []byte { b := append([]byte{}, buf...); b[4] = 99; return b },
		"truncated":   func() []byte { return buf[:len(buf)-5] },
		"bad section": func() []byte {
			b := append([]byte{}, buf...)
			b[28] = 0xFF
			b[29] = 0xFF
			b[30] = 0xFF
			b[31] = 0xFF
			return b
		},
	}
	for name, gen := range cases {
		if _, err := OpenView(gen()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarshalValidation(t *testing.T) {
	f := buildFooter(5, 1, 1)
	f.Checksums = f.Checksums[:2] // wrong length
	if _, err := f.Marshal(); err == nil {
		t.Fatal("bad checksum length accepted")
	}
	f = buildFooter(5, 1, 1)
	f.Columns = f.Columns[:3]
	if _, err := f.Marshal(); err == nil {
		t.Fatal("bad column count accepted")
	}
}

// Property: arbitrary geometries round-trip through Marshal/OpenView.
func TestFooterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ft := buildFooter(rng.Intn(30)+1, rng.Intn(4)+1, rng.Intn(3)+1)
		buf, err := ft.Marshal()
		if err != nil {
			return false
		}
		v, err := OpenView(buf)
		if err != nil {
			return false
		}
		c := rng.Intn(ft.NumColumns)
		got, ok := v.LookupColumn(ft.Columns[c].Name)
		return ok && got == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeDescString(t *testing.T) {
	cases := []struct {
		d    TypeDesc
		want string
	}{
		{TypeDesc{Kind: KindInt64}, "int64"},
		{TypeDesc{Kind: KindList, Elem: KindInt64}, "list<int64>"},
		{TypeDesc{Kind: KindListList, Elem: KindInt64}, "list<list<int64>>"},
		{TypeDesc{Kind: KindFloat32, Quant: 3}, "float32[q3]"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%+v = %q, want %q", c.d, got, c.want)
		}
	}
}
