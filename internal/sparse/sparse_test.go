package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bullion/internal/enc"
)

// genSlidingWindows produces clk_seq_cids-style vectors: per "user", each
// step pushes a few new IDs at the head and drops as many from the tail.
func genSlidingWindows(rng *rand.Rand, nVectors, width int) [][]int64 {
	out := make([][]int64, 0, nVectors)
	cur := make([]int64, width)
	for i := range cur {
		cur[i] = rng.Int63n(1 << 32)
	}
	for len(out) < nVectors {
		cp := make([]int64, len(cur))
		copy(cp, cur)
		out = append(out, cp)
		churn := rng.Intn(3) // 0-2 new IDs per step
		for c := 0; c < churn; c++ {
			next := make([]int64, 0, width)
			next = append(next, rng.Int63n(1<<32))
			next = append(next, cur[:width-1]...)
			cur = next
		}
	}
	return out
}

func TestPaperFigure4Example(t *testing.T) {
	// The exact running example from Figures 3-4.
	base := []int64{92, 82, 66, 18, 67, 13, 96, 63, 33, 49, 80, 85, 59, 30, 47, 55}
	v2 := append([]int64{76}, base[:15]...)          // new 76 at head, overlap [0-14]
	v3 := append([]int64{}, v2...)                   // identical: overlap [0-15]
	v4 := append(append([]int64{}, base...), 55)[1:] // drifted window

	vectors := [][]int64{base, v2, v3, v4}
	opts := DefaultOptions()
	encoded, err := EncodeColumn(vectors, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumn(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vectors) {
		t.Fatalf("decoded %d vectors, want %d", len(got), len(vectors))
	}
	for i := range vectors {
		if len(got[i]) != len(vectors[i]) {
			t.Fatalf("vector %d length %d, want %d", i, len(got[i]), len(vectors[i]))
		}
		for j := range vectors[i] {
			if got[i][j] != vectors[i][j] {
				t.Fatalf("vector %d element %d = %d, want %d", i, j, got[i][j], vectors[i][j])
			}
		}
	}

	// Per Figure 4: vector 2 stores only the new head element, vector 3
	// stores nothing, vector 4 only its churn.
	s := Analyze(vectors, opts)
	if s.BaseVectors != 1 {
		t.Fatalf("base vectors = %d, want 1", s.BaseVectors)
	}
	if s.DeltaVectors != 3 {
		t.Fatalf("delta vectors = %d, want 3", s.DeltaVectors)
	}
	// base 16 + head 1 (v2) + 0 (v3) + churn (v4: window shifted by one,
	// new tail 55 appears once) = at most 19 stored values.
	if s.ValuesStored > 19 {
		t.Fatalf("stored %d values, want <= 19 (of %d logical)", s.ValuesStored, s.ValuesTotal)
	}
}

func TestSlidingWindowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vectors := genSlidingWindows(rng, 500, 256)
	encoded, err := EncodeColumn(vectors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumn(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vectors {
		for j := range vectors[i] {
			if got[i][j] != vectors[i][j] {
				t.Fatalf("vector %d element %d mismatch", i, j)
			}
		}
	}
}

// The headline §2.2 claim: substantial storage savings on sliding windows.
func TestSlidingWindowCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vectors := genSlidingWindows(rng, 1000, 256)
	opts := DefaultOptions()
	encoded, err := EncodeColumn(vectors, opts)
	if err != nil {
		t.Fatal(err)
	}
	plainSize := 0
	for _, v := range vectors {
		plainSize += 8 * len(v)
	}
	ratio := float64(len(encoded)) / float64(plainSize)
	if ratio > 0.25 {
		t.Fatalf("sparse delta achieved only %.1f%% of plain (want < 25%%)", 100*ratio)
	}
	t.Logf("sparse delta: %d -> %d bytes (%.1f%%)", plainSize, len(encoded), 100*ratio)
}

func TestUnrelatedVectorsFallBackToBase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vectors := make([][]int64, 20)
	for i := range vectors {
		v := make([]int64, 64)
		for j := range v {
			v[j] = rng.Int63()
		}
		vectors[i] = v
	}
	s := Analyze(vectors, DefaultOptions())
	if s.BaseVectors != len(vectors) {
		t.Fatalf("unrelated vectors produced %d bases of %d", s.BaseVectors, len(vectors))
	}
	encoded, err := EncodeColumn(vectors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumn(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vectors {
		for j := range vectors[i] {
			if got[i][j] != vectors[i][j] {
				t.Fatalf("vector %d element %d mismatch", i, j)
			}
		}
	}
}

func TestRestartInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vectors := genSlidingWindows(rng, 200, 64)
	opts := DefaultOptions()
	opts.RestartInterval = 10
	s := Analyze(vectors, opts)
	if s.BaseVectors < len(vectors)/11 {
		t.Fatalf("restart interval ignored: %d bases for %d vectors", s.BaseVectors, s.Vectors)
	}
	encoded, err := EncodeColumn(vectors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeColumn(encoded); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCases(t *testing.T) {
	cases := [][][]int64{
		{},                      // no vectors
		{{}},                    // one empty vector
		{{1}},                   // one single-element vector
		{{}, {}, {}},            // all empty
		{{1, 2, 3}, {}, {1, 2}}, // empties interleaved
	}
	for i, vectors := range cases {
		encoded, err := EncodeColumn(vectors, DefaultOptions())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodeColumn(encoded)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(vectors) {
			t.Fatalf("case %d: %d vectors, want %d", i, len(got), len(vectors))
		}
		for vi := range vectors {
			if len(got[vi]) != len(vectors[vi]) {
				t.Fatalf("case %d vector %d: length %d, want %d", i, vi, len(got[vi]), len(vectors[vi]))
			}
		}
	}
}

func TestLongestCommonRun(t *testing.T) {
	cases := []struct {
		prev, cur   []int64
		start, len_ int
		ok          bool
	}{
		{[]int64{1, 2, 3, 4}, []int64{9, 2, 3, 4}, 1, 3, true},
		{[]int64{1, 2, 3}, []int64{4, 5, 6}, 0, 0, false},
		{[]int64{1, 2, 3}, []int64{1, 2, 3}, 0, 3, true},
		{[]int64{5, 1, 2, 9}, []int64{1, 2}, 1, 2, true},
		{nil, []int64{1}, 0, 0, false},
	}
	for i, c := range cases {
		start, l, ok := longestCommonRun(c.prev, c.cur)
		if ok != c.ok || (ok && (start != c.start || l != c.len_)) {
			t.Errorf("case %d: got (%d,%d,%v), want (%d,%d,%v)", i, start, l, ok, c.start, c.len_, c.ok)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	vectors := [][]int64{{1, 2, 3}, {2, 3, 4}}
	encoded, err := EncodeColumn(vectors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 3, len(encoded) - 2} {
		if _, err := DecodeColumn(encoded[:cut]); err == nil {
			t.Errorf("truncation to %d decoded without error", cut)
		}
	}
}

// Property: any vector sequence round-trips.
func TestSparseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		vectors := make([][]int64, n)
		for i := range vectors {
			v := make([]int64, rng.Intn(40))
			for j := range v {
				v[j] = rng.Int63n(50) // small domain: accidental overlaps
			}
			vectors[i] = v
		}
		opts := DefaultOptions()
		opts.MinOverlap = 2
		encoded, err := EncodeColumn(vectors, opts)
		if err != nil {
			return false
		}
		got, err := DecodeColumn(encoded)
		if err != nil || len(got) != n {
			return false
		}
		for i := range vectors {
			if len(got[i]) != len(vectors[i]) {
				return false
			}
			for j := range vectors[i] {
				if got[i][j] != vectors[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vectors := genSlidingWindows(rng, 300, 128)
	opts := DefaultOptions()
	s := Analyze(vectors, opts)
	if s.Vectors != 300 || s.BaseVectors+s.DeltaVectors != 300 {
		t.Fatalf("inconsistent stats: %+v", s)
	}
	if s.ValuesStored >= s.ValuesTotal {
		t.Fatalf("no savings on sliding windows: %+v", s)
	}
}

// A read-optimized cascade must still round-trip the bulk stream.
func TestCustomEncOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	vectors := genSlidingWindows(rng, 100, 64)
	opts := DefaultOptions()
	opts.Enc = &enc.Options{MaxDepth: 1, SampleSize: 256, ReadWeight: 1}
	encoded, err := EncodeColumn(vectors, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumn(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vectors {
		for j := range vectors[i] {
			if got[i][j] != vectors[i][j] {
				t.Fatalf("vector %d element %d mismatch", i, j)
			}
		}
	}
}
