// Package sparse implements Bullion's delta encoding for long-sequence
// sparse features (paper §2.2, Figures 3–4).
//
// Sequence features such as clk_seq_cids (a list<int64> of recently
// clicked ad IDs per user) are written sorted by user and time, so
// consecutive vectors of the same user overlap in a sliding window: a few
// new IDs appear at the head, a few old ones fall off the tail, and the
// middle is shared verbatim with the previous vector.
//
// Following Figure 4, the first vector of a column chunk is stored whole
// (delta flag 0, the "base vector"); each subsequent vector is encoded as
//
//	<delta flag=1> <delta range into previous> <len(head), head data>
//	                                           <len(tail), tail data>
//
// meaning: current = head ++ previous[range] ++ tail. Feature metadata and
// indexes are placed at the beginning of the stream (varint/bit-packed,
// they are small); the bulk value data follows and is compressed with the
// integer cascade (the paper uses zstd — mini-batch training reads rarely
// filter, so bulk compression is cheap to afford).
package sparse

import (
	"encoding/binary"
	"fmt"

	"bullion/internal/enc"
)

// Options configures the sparse encoder.
type Options struct {
	// MinOverlap is the minimum shared-run length worth delta-encoding;
	// vectors with less overlap are stored as new base vectors.
	MinOverlap int
	// RestartInterval forces a base vector every N vectors so page-local
	// decodes never chase long delta chains. 0 disables forced restarts.
	RestartInterval int
	// Enc configures the cascade used for the bulk value stream.
	Enc *enc.Options
}

// DefaultOptions returns the writer defaults: 8-element minimum overlap,
// restart every 64 vectors.
func DefaultOptions() *Options {
	return &Options{MinOverlap: 8, RestartInterval: 64, Enc: enc.DefaultOptions()}
}

// vectorMeta is the per-vector index entry (Figure 4's metadata section).
type vectorMeta struct {
	isDelta    bool
	rangeStart int // into the previous vector
	rangeLen   int
	headLen    int
	tailLen    int
	baseLen    int // for base vectors
}

// EncodeColumn encodes a column chunk of sequence vectors.
//
// Stream layout:
//
//	nVectors(uvarint)
//	meta: per vector — flag(1B) + varint fields
//	childValues: one cascaded int64 stream of all base/head/tail values
func EncodeColumn(vectors [][]int64, opts *Options) ([]byte, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	metas := make([]vectorMeta, len(vectors))
	var values []int64
	var prev []int64
	sinceBase := 0
	for i, cur := range vectors {
		forceBase := prev == nil ||
			(opts.RestartInterval > 0 && sinceBase >= opts.RestartInterval)
		var m vectorMeta
		if !forceBase {
			if start, l, ok := longestCommonRun(prev, cur); ok && l >= opts.MinOverlap {
				curStart := indexOfRun(cur, prev[start:start+l])
				if curStart < 0 {
					return nil, fmt.Errorf("sparse: internal: common run not found in current vector %d", i)
				}
				m = vectorMeta{
					isDelta:    true,
					rangeStart: start,
					rangeLen:   l,
					headLen:    curStart,
					tailLen:    len(cur) - curStart - l,
				}
				values = append(values, cur[:curStart]...)
				values = append(values, cur[curStart+l:]...)
			}
		}
		if !m.isDelta {
			m = vectorMeta{baseLen: len(cur)}
			values = append(values, cur...)
			sinceBase = 0
		} else {
			sinceBase++
		}
		metas[i] = m
		prev = cur
	}

	dst := binary.AppendUvarint(nil, uint64(len(vectors)))
	for _, m := range metas {
		if m.isDelta {
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(m.rangeStart))
			dst = binary.AppendUvarint(dst, uint64(m.rangeLen))
			dst = binary.AppendUvarint(dst, uint64(m.headLen))
			dst = binary.AppendUvarint(dst, uint64(m.tailLen))
		} else {
			dst = append(dst, 0)
			dst = binary.AppendUvarint(dst, uint64(m.baseLen))
		}
	}
	valueStream, err := enc.EncodeInts(nil, values, opts.Enc)
	if err != nil {
		return nil, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(valueStream)))
	return append(dst, valueStream...), nil
}

// DecodeColumn decodes a column chunk produced by EncodeColumn.
func DecodeColumn(src []byte) ([][]int64, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, fmt.Errorf("sparse: bad vector count")
	}
	src = src[sz:]
	// Every vector costs at least one metadata byte; hostile counts must
	// not drive allocations.
	if n > uint64(len(src)) {
		return nil, fmt.Errorf("sparse: %d vectors cannot fit in %d bytes", n, len(src))
	}
	metas := make([]vectorMeta, n)
	totalValues := 0
	for i := range metas {
		if len(src) < 1 {
			return nil, fmt.Errorf("sparse: truncated metadata at vector %d", i)
		}
		flag := src[0]
		src = src[1:]
		var m vectorMeta
		if flag == 1 {
			m.isDelta = true
			fields := [4]*int{&m.rangeStart, &m.rangeLen, &m.headLen, &m.tailLen}
			for _, f := range fields {
				v, sz := binary.Uvarint(src)
				if sz <= 0 {
					return nil, fmt.Errorf("sparse: truncated delta meta at vector %d", i)
				}
				*f = int(v)
				src = src[sz:]
			}
			totalValues += m.headLen + m.tailLen
		} else {
			v, sz := binary.Uvarint(src)
			if sz <= 0 {
				return nil, fmt.Errorf("sparse: truncated base meta at vector %d", i)
			}
			m.baseLen = int(v)
			src = src[sz:]
			totalValues += m.baseLen
		}
		metas[i] = m
	}
	streamLen, sz := binary.Uvarint(src)
	if sz <= 0 || streamLen > uint64(len(src)-sz) {
		return nil, fmt.Errorf("sparse: bad value stream length")
	}
	values, err := enc.DecodeInts(src[sz:sz+int(streamLen)], totalValues)
	if err != nil {
		return nil, err
	}

	out := make([][]int64, n)
	var prev []int64
	pos := 0
	take := func(k int) ([]int64, error) {
		if pos+k > len(values) {
			return nil, fmt.Errorf("sparse: value stream exhausted")
		}
		v := values[pos : pos+k]
		pos += k
		return v, nil
	}
	for i, m := range metas {
		if !m.isDelta {
			base, err := take(m.baseLen)
			if err != nil {
				return nil, err
			}
			cur := make([]int64, m.baseLen)
			copy(cur, base)
			out[i] = cur
			prev = cur
			continue
		}
		if prev == nil {
			return nil, fmt.Errorf("sparse: vector %d is a delta with no base", i)
		}
		if m.rangeStart < 0 || m.rangeStart+m.rangeLen > len(prev) {
			return nil, fmt.Errorf("sparse: vector %d range [%d,%d) outside previous of %d",
				i, m.rangeStart, m.rangeStart+m.rangeLen, len(prev))
		}
		head, err := take(m.headLen)
		if err != nil {
			return nil, err
		}
		tail, err := take(m.tailLen)
		if err != nil {
			return nil, err
		}
		cur := make([]int64, 0, m.headLen+m.rangeLen+m.tailLen)
		cur = append(cur, head...)
		cur = append(cur, prev[m.rangeStart:m.rangeStart+m.rangeLen]...)
		cur = append(cur, tail...)
		out[i] = cur
		prev = cur
	}
	return out, nil
}

// longestCommonRun finds the longest contiguous run shared between prev and
// cur, returning its start in prev. Sliding windows make the common run
// almost always a small head/tail shift, so those alignments are probed
// first in O(k·n); the general O(n·m) search remains as the fallback for
// arbitrary drift.
func longestCommonRun(prev, cur []int64) (start, length int, ok bool) {
	if len(prev) == 0 || len(cur) == 0 {
		return 0, 0, false
	}
	// Fast path: probe shift alignments cur[c:] vs prev[p:] for small
	// c,p — the shapes a sliding window produces (new head elements, old
	// tail elements dropped). Accept when the aligned run covers most of
	// the shorter vector; anything weirder falls through to the DP.
	const maxShift = 8
	bestLen, bestStart := 0, 0
	for c := 0; c <= maxShift && c < len(cur); c++ {
		for p := 0; p <= maxShift && p < len(prev); p++ {
			l := 0
			for c+l < len(cur) && p+l < len(prev) && cur[c+l] == prev[p+l] {
				l++
			}
			if l > bestLen {
				bestLen, bestStart = l, p
			}
		}
	}
	minLen := len(prev)
	if len(cur) < minLen {
		minLen = len(cur)
	}
	if bestLen*4 >= minLen*3 { // covers >= 75% of the shorter vector
		return bestStart, bestLen, true
	}
	// dp[j] = length of common run ending at prev[i-1], cur[j-1].
	dp := make([]int, len(cur)+1)
	bestLen, bestPrevEnd := 0, 0
	for i := 1; i <= len(prev); i++ {
		prevDiag := 0
		for j := 1; j <= len(cur); j++ {
			cell := 0
			if prev[i-1] == cur[j-1] {
				cell = prevDiag + 1
			}
			prevDiag = dp[j]
			dp[j] = cell
			if cell > bestLen {
				bestLen, bestPrevEnd = cell, i
			}
		}
	}
	if bestLen == 0 {
		return 0, 0, false
	}
	return bestPrevEnd - bestLen, bestLen, true
}

// indexOfRun returns the position of run inside cur (first occurrence).
func indexOfRun(cur, run []int64) int {
	if len(run) == 0 {
		return 0
	}
outer:
	for i := 0; i+len(run) <= len(cur); i++ {
		for k := range run {
			if cur[i+k] != run[k] {
				continue outer
			}
		}
		return i
	}
	return -1
}

// Stats reports how a column chunk was encoded, for the fig4 experiment.
type Stats struct {
	Vectors      int
	BaseVectors  int
	DeltaVectors int
	ValuesStored int // values physically written (bases + heads + tails)
	ValuesTotal  int // logical values across all vectors
}

// Analyze computes encoding statistics without serializing.
func Analyze(vectors [][]int64, opts *Options) Stats {
	if opts == nil {
		opts = DefaultOptions()
	}
	var s Stats
	s.Vectors = len(vectors)
	var prev []int64
	sinceBase := 0
	for _, cur := range vectors {
		s.ValuesTotal += len(cur)
		forceBase := prev == nil ||
			(opts.RestartInterval > 0 && sinceBase >= opts.RestartInterval)
		encodedAsDelta := false
		if !forceBase {
			if _, l, ok := longestCommonRun(prev, cur); ok && l >= opts.MinOverlap {
				s.DeltaVectors++
				s.ValuesStored += len(cur) - l
				sinceBase++
				encodedAsDelta = true
			}
		}
		if !encodedAsDelta {
			s.BaseVectors++
			s.ValuesStored += len(cur)
			sinceBase = 0
		}
		prev = cur
	}
	return s
}
