package bullion

// Training-loader benchmarks (recorded in BENCH_loader.json): epoch
// streaming throughput at 1 and 8 consumers over a multi-member local
// dataset, and the shuffle-plan cost in isolation. The plan benchmark
// wraps every member reader in a counter and self-asserts that planning
// a loader touches zero member bytes (b.Fatal otherwise) — the plan is
// a pure function of the manifest's row counts — so "zero data reads
// during planning" is enforced on every run, including CI smoke.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"testing"
)

const (
	ldrBenchFiles = 4
	ldrBenchRows  = 65536 // rows per member
	ldrBenchCols  = 8
	ldrBenchShard = 8192
)

var ldrBenchHot = []string{"key", "feat_001"}

var ldrBench struct {
	once sync.Once
	dir  string
}

func ldrBenchDir(b *testing.B) string {
	b.Helper()
	ldrBench.once.Do(func() {
		// Not b.TempDir(): the dataset outlives the benchmark that builds
		// it (shared across the consumer-count variants).
		dir, err := os.MkdirTemp("", "bullion-loaderbench")
		if err != nil {
			panic(err)
		}
		fields := make([]Field, ldrBenchCols)
		for c := range fields {
			fields[c] = Field{Name: fmt.Sprintf("feat_%03d", c), Type: Type{Kind: Int64}}
		}
		fields[0].Name = "key"
		schema, err := NewSchema(fields...)
		if err != nil {
			panic(err)
		}
		ds, err := CreateDataset(dir, schema, nil)
		if err != nil {
			panic(err)
		}
		for f := 0; f < ldrBenchFiles; f++ {
			cols := make([]ColumnData, ldrBenchCols)
			for c := range cols {
				vals := make(Int64Data, ldrBenchRows)
				for r := range vals {
					vals[r] = int64(f*ldrBenchRows + r + c)
				}
				cols[c] = vals
			}
			batch, err := NewBatch(schema, cols)
			if err != nil {
				panic(err)
			}
			if err := ds.Append(batch); err != nil {
				panic(err)
			}
		}
		ds.Close()
		ldrBench.dir = dir
	})
	return ldrBench.dir
}

// benchLoaderEpoch streams one full epoch per iteration: consumers == 1
// drives Next directly, otherwise Feed fans batches out to the pool.
func benchLoaderEpoch(b *testing.B, consumers int) {
	dir := ldrBenchDir(b)
	ds, err := OpenDataset(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	const totalRows = ldrBenchFiles * ldrBenchRows

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld, err := NewLoader(ds, LoaderOptions{
			Columns:   ldrBenchHot,
			ShardRows: ldrBenchShard,
			Seed:      int64(i), // a different shuffle each iteration
		})
		if err != nil {
			b.Fatal(err)
		}
		var rows atomic.Int64
		if consumers == 1 {
			for {
				batch, err := ld.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				rows.Add(int64(batch.NumRows()))
			}
		} else {
			err = ld.Feed(consumers, func(_ int, batch *Batch) error {
				rows.Add(int64(batch.NumRows()))
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		ld.Close()
		if rows.Load() != totalRows {
			b.Fatalf("epoch emitted %d rows, want %d", rows.Load(), totalRows)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(totalRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

func BenchmarkLoaderEpoch1Consumer(b *testing.B)  { benchLoaderEpoch(b, 1) }
func BenchmarkLoaderEpoch8Consumers(b *testing.B) { benchLoaderEpoch(b, 8) }

// countingReaderAt counts member reads so the plan benchmark can prove
// planning never touches member bytes.
type countingReaderAt struct {
	r     io.ReaderAt
	reads *atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads.Add(1)
	return c.r.ReadAt(p, off)
}

// BenchmarkLoaderPlan measures the shuffle-plan cost alone: construct a
// loader (manifest walk + first-epoch permutation seeding) and close it
// without emitting a batch. Zero member reads, by assertion.
func BenchmarkLoaderPlan(b *testing.B) {
	dir := ldrBenchDir(b)
	var opens, reads atomic.Int64
	ds, err := OpenDataset(dir, &DatasetOptions{
		WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
			opens.Add(1)
			return &countingReaderAt{r: r, reads: &reads}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()

	opens.Store(0)
	reads.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld, err := NewLoader(ds, LoaderOptions{
			Columns:   ldrBenchHot,
			ShardRows: ldrBenchShard,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if ld.NumShards() != ldrBenchFiles*ldrBenchRows/ldrBenchShard {
			b.Fatalf("planned %d shards", ld.NumShards())
		}
		ld.Close()
	}
	b.StopTimer()
	if opens.Load() != 0 || reads.Load() != 0 {
		b.Fatalf("planning opened %d members and issued %d reads, want 0/0",
			opens.Load(), reads.Load())
	}
}
