package bullion

// Streaming-scan benchmarks: the whole-column Project path (decode on the
// calling goroutine, one column at a time) against the batch-streaming
// Scanner at 1/4/8 workers, over a 64-column feature table. Two storage
// models bracket the regimes the paper targets:
//
//   - in-memory (page-cache-hot local file): decode-bound, so the Scanner
//     win tracks available cores;
//   - "blob": every ReadAt carries fixed latency (object storage / cold
//     NVMe). Scanner workers overlap reads with each other and with
//     decode, so the win appears even on a single core.
//
// Recorded in BENCH_scan.json (see that file for the capture command).

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const (
	scanBenchCols    = 64
	scanBenchRows    = 32768
	scanBenchGroup   = 8192 // 4 row groups
	scanBenchLatency = time.Millisecond
)

var scanBench struct {
	once  sync.Once
	file  *benchFile
	names []string
}

// scanBenchFile writes the shared 64-column table once per process.
func scanBenchFile(b *testing.B) (*benchFile, []string) {
	b.Helper()
	scanBench.once.Do(func() {
		rng := rand.New(rand.NewSource(1759))
		fields := make([]Field, scanBenchCols)
		cols := make([]ColumnData, scanBenchCols)
		names := make([]string, scanBenchCols)
		for c := 0; c < scanBenchCols; c++ {
			names[c] = fmt.Sprintf("feat_%03d", c)
			fields[c] = Field{Name: names[c], Type: Type{Kind: Int64}}
			vals := make(Int64Data, scanBenchRows)
			for r := range vals {
				vals[r] = rng.Int63n(1 << 20)
			}
			cols[c] = vals
		}
		schema, err := NewSchema(fields...)
		if err != nil {
			panic(err)
		}
		batch, err := NewBatch(schema, cols)
		if err != nil {
			panic(err)
		}
		mf := &benchFile{}
		w, err := NewWriter(mf, schema, &Options{
			RowsPerPage: 1024,
			GroupRows:   scanBenchGroup,
			Compliance:  Level1,
		})
		if err != nil {
			panic(err)
		}
		if err := w.Write(batch); err != nil {
			panic(err)
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		scanBench.file = mf
		scanBench.names = names
	})
	return scanBench.file, scanBench.names
}

// latencyReaderAt adds a fixed delay to every ReadAt — a first-order
// model of blob-storage TTFB. Sleeping goroutines release the CPU, so
// concurrent readers genuinely overlap.
type latencyReaderAt struct {
	r io.ReaderAt
	d time.Duration
}

func (l *latencyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(l.d)
	return l.r.ReadAt(p, off)
}

func openScanBench(b *testing.B, latency time.Duration) (*File, []string) {
	b.Helper()
	mf, names := scanBenchFile(b)
	var r io.ReaderAt = mf
	if latency > 0 {
		r = &latencyReaderAt{r: mf, d: latency}
	}
	f, err := Open(r, mf.Size())
	if err != nil {
		b.Fatal(err)
	}
	return f, names
}

func reportScanRate(b *testing.B) {
	rows := float64(scanBenchRows) * float64(b.N)
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/sec")
}

func benchWholeColumn(b *testing.B, latency time.Duration) {
	f, names := openScanBench(b, latency)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := f.Project(names...)
		if err != nil {
			b.Fatal(err)
		}
		if batch.NumRows() != scanBenchRows {
			b.Fatalf("projected %d rows", batch.NumRows())
		}
	}
	reportScanRate(b)
}

func benchStreaming(b *testing.B, workers int, latency time.Duration) {
	f, names := openScanBench(b, latency)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := f.Scan(ScanOptions{
			Columns:   names,
			Workers:   workers,
			BatchRows: 8192,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			batch, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += batch.NumRows()
		}
		sc.Close()
		if rows != scanBenchRows {
			b.Fatalf("scanned %d rows", rows)
		}
	}
	reportScanRate(b)
}

func BenchmarkScanWholeColumn(b *testing.B) { benchWholeColumn(b, 0) }
func BenchmarkScanStreaming1(b *testing.B)  { benchStreaming(b, 1, 0) }
func BenchmarkScanStreaming4(b *testing.B)  { benchStreaming(b, 4, 0) }
func BenchmarkScanStreaming8(b *testing.B)  { benchStreaming(b, 8, 0) }

func BenchmarkScanWholeColumnBlob(b *testing.B) { benchWholeColumn(b, scanBenchLatency) }
func BenchmarkScanStreamingBlob1(b *testing.B)  { benchStreaming(b, 1, scanBenchLatency) }
func BenchmarkScanStreamingBlob4(b *testing.B)  { benchStreaming(b, 4, scanBenchLatency) }
func BenchmarkScanStreamingBlob8(b *testing.B)  { benchStreaming(b, 8, scanBenchLatency) }
