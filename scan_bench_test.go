package bullion

// Streaming-scan benchmarks: the whole-column Project path (decode on the
// calling goroutine, one column at a time) against the batch-streaming
// Scanner at 1/4/8 workers, over a 64-column feature table. Two storage
// models bracket the regimes the paper targets:
//
//   - in-memory (page-cache-hot local file): decode-bound, so the Scanner
//     win tracks available cores;
//   - "blob": every ReadAt carries fixed latency (object storage / cold
//     NVMe). Scanner workers overlap reads with each other and with
//     decode, so the win appears even on a single core.
//
// Recorded in BENCH_scan.json (see that file for the capture command).

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const (
	scanBenchCols    = 64
	scanBenchRows    = 32768
	scanBenchGroup   = 8192 // 4 row groups
	scanBenchLatency = time.Millisecond
)

var scanBench struct {
	once  sync.Once
	file  *benchFile
	names []string
}

// scanBenchFile writes the shared 64-column table once per process.
func scanBenchFile(b *testing.B) (*benchFile, []string) {
	b.Helper()
	scanBench.once.Do(func() {
		rng := rand.New(rand.NewSource(1759))
		fields := make([]Field, scanBenchCols)
		cols := make([]ColumnData, scanBenchCols)
		names := make([]string, scanBenchCols)
		for c := 0; c < scanBenchCols; c++ {
			names[c] = fmt.Sprintf("feat_%03d", c)
			fields[c] = Field{Name: names[c], Type: Type{Kind: Int64}}
			vals := make(Int64Data, scanBenchRows)
			for r := range vals {
				vals[r] = rng.Int63n(1 << 20)
			}
			cols[c] = vals
		}
		schema, err := NewSchema(fields...)
		if err != nil {
			panic(err)
		}
		batch, err := NewBatch(schema, cols)
		if err != nil {
			panic(err)
		}
		mf := &benchFile{}
		w, err := NewWriter(mf, schema, &Options{
			RowsPerPage: 1024,
			GroupRows:   scanBenchGroup,
			Compliance:  Level1,
		})
		if err != nil {
			panic(err)
		}
		if err := w.Write(batch); err != nil {
			panic(err)
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		scanBench.file = mf
		scanBench.names = names
	})
	return scanBench.file, scanBench.names
}

// latencyReaderAt adds a fixed delay to every ReadAt — a first-order
// model of blob-storage TTFB. Sleeping goroutines release the CPU, so
// concurrent readers genuinely overlap.
type latencyReaderAt struct {
	r io.ReaderAt
	d time.Duration
}

func (l *latencyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(l.d)
	return l.r.ReadAt(p, off)
}

func openScanBench(b *testing.B, latency time.Duration) (*File, []string) {
	b.Helper()
	mf, names := scanBenchFile(b)
	var r io.ReaderAt = mf
	if latency > 0 {
		r = &latencyReaderAt{r: mf, d: latency}
	}
	f, err := Open(r, mf.Size())
	if err != nil {
		b.Fatal(err)
	}
	return f, names
}

func reportScanRate(b *testing.B) {
	rows := float64(scanBenchRows) * float64(b.N)
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/sec")
}

func benchWholeColumn(b *testing.B, latency time.Duration) {
	f, names := openScanBench(b, latency)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := f.Project(names...)
		if err != nil {
			b.Fatal(err)
		}
		if batch.NumRows() != scanBenchRows {
			b.Fatalf("projected %d rows", batch.NumRows())
		}
	}
	reportScanRate(b)
}

func benchStreaming(b *testing.B, workers int, latency time.Duration) {
	f, names := openScanBench(b, latency)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// DisableCoalesce pins the pre-planner per-column read path: these
		// benchmarks are the baseline the coalesced scan is measured
		// against (and stay comparable with the PR-1 numbers).
		sc, err := f.Scan(ScanOptions{
			Columns:         names,
			Workers:         workers,
			BatchRows:       8192,
			DisableCoalesce: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			batch, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += batch.NumRows()
		}
		sc.Close()
		if rows != scanBenchRows {
			b.Fatalf("scanned %d rows", rows)
		}
	}
	reportScanRate(b)
}

func BenchmarkScanWholeColumn(b *testing.B) { benchWholeColumn(b, 0) }
func BenchmarkScanStreaming1(b *testing.B)  { benchStreaming(b, 1, 0) }
func BenchmarkScanStreaming4(b *testing.B)  { benchStreaming(b, 4, 0) }
func BenchmarkScanStreaming8(b *testing.B)  { benchStreaming(b, 8, 0) }

func BenchmarkScanWholeColumnBlob(b *testing.B) { benchWholeColumn(b, scanBenchLatency) }
func BenchmarkScanStreamingBlob1(b *testing.B)  { benchStreaming(b, 1, scanBenchLatency) }
func BenchmarkScanStreamingBlob4(b *testing.B)  { benchStreaming(b, 4, scanBenchLatency) }
func BenchmarkScanStreamingBlob8(b *testing.B)  { benchStreaming(b, 8, scanBenchLatency) }

// ---- Coalesced scan on the hot-reordered widetable workload ----
//
// The §2.5 pairing: 16 hot features scattered across a 64-column table
// are reordered to the front at write time (ReorderFields), so a hot-set
// projection touches 16 physically adjacent chunks per row group. The
// coalesced scan then reads each group's hot set in one I/O and decodes
// into recycled batch storage; the *Hot baselines run the identical
// projection on the identical file through the per-column path. Both
// paths return byte-identical batches (TestGoldenScanCoalescedIdentical
// and TestScanCoalescedMatchesUncoalesced pin this).

const hotBenchCols = 16

var hotBench struct {
	once  sync.Once
	file  *benchFile
	names []string // the hot projection, in reordered (= schema) order
}

// hotBenchFile writes the shared hot-reordered table once per process.
func hotBenchFile(b *testing.B) (*benchFile, []string) {
	b.Helper()
	hotBench.once.Do(func() {
		rng := rand.New(rand.NewSource(977))
		fields := make([]Field, scanBenchCols)
		cols := make([]ColumnData, scanBenchCols)
		var hot []string
		for c := 0; c < scanBenchCols; c++ {
			name := fmt.Sprintf("feat_%03d", c)
			fields[c] = Field{Name: name, Type: Type{Kind: Int64}}
			if c%4 == 0 { // every 4th feature is hot: scattered before reordering
				hot = append(hot, name)
			}
			vals := make(Int64Data, scanBenchRows)
			for r := range vals {
				vals[r] = rng.Int63n(1 << 20)
			}
			cols[c] = vals
		}
		schema, err := NewSchema(fields...)
		if err != nil {
			panic(err)
		}
		reordered, perm, err := ReorderFields(schema, hot)
		if err != nil {
			panic(err)
		}
		batch, err := NewBatch(reordered, ReorderBatchColumns(cols, perm))
		if err != nil {
			panic(err)
		}
		mf := &benchFile{}
		w, err := NewWriter(mf, reordered, &Options{
			RowsPerPage: 1024,
			GroupRows:   scanBenchGroup,
			Compliance:  Level1,
		})
		if err != nil {
			panic(err)
		}
		if err := w.Write(batch); err != nil {
			panic(err)
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		hotBench.file = mf
		hotBench.names = hot
	})
	return hotBench.file, hotBench.names
}

// benchHotScan runs the hot projection with the given options, reporting
// rows/sec, physical read ops, and (via -benchmem / ReportAllocs)
// allocations per scanned file.
func benchHotScan(b *testing.B, workers int, coalesce, recycle bool, latency time.Duration) {
	mf, names := hotBenchFile(b)
	if len(names) != hotBenchCols {
		b.Fatalf("hot set has %d columns", len(names))
	}
	var r io.ReaderAt = mf
	if latency > 0 {
		r = &latencyReaderAt{r: mf, d: latency}
	}
	f, err := Open(r, mf.Size())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var readOps int64
	for i := 0; i < b.N; i++ {
		sc, err := f.Scan(ScanOptions{
			Columns:         names,
			Workers:         workers,
			BatchRows:       8192,
			DisableCoalesce: !coalesce,
			ReuseBatches:    recycle,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			batch, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += batch.NumRows()
			if recycle {
				sc.Recycle(batch)
			}
		}
		readOps += sc.Stats().ReadOps
		sc.Close()
		if rows != scanBenchRows {
			b.Fatalf("scanned %d rows", rows)
		}
	}
	b.ReportMetric(float64(readOps)/float64(b.N), "readops/op")
	reportScanRate(b)
}

// BenchmarkScanCoalesced*: planner + pooled run buffers + batch recycling.
func BenchmarkScanCoalesced1(b *testing.B) { benchHotScan(b, 1, true, true, 0) }
func BenchmarkScanCoalesced8(b *testing.B) { benchHotScan(b, 8, true, true, 0) }

// BenchmarkScanStreamingHot*: the same projection on the same file
// through the per-column baseline path.
func BenchmarkScanStreamingHot1(b *testing.B) { benchHotScan(b, 1, false, false, 0) }
func BenchmarkScanStreamingHot8(b *testing.B) { benchHotScan(b, 8, false, false, 0) }

// Blob variants: with per-read latency, the 16x read-op reduction is a
// direct wall-clock win even before decode cost matters.
func BenchmarkScanCoalescedBlob1(b *testing.B) { benchHotScan(b, 1, true, true, scanBenchLatency) }
func BenchmarkScanCoalescedBlob8(b *testing.B) { benchHotScan(b, 8, true, true, scanBenchLatency) }
func BenchmarkScanStreamingHotBlob1(b *testing.B) {
	benchHotScan(b, 1, false, false, scanBenchLatency)
}
func BenchmarkScanStreamingHotBlob8(b *testing.B) {
	benchHotScan(b, 8, false, false, scanBenchLatency)
}
