// Dataset: the multi-file table layer. Training tables are fleets of
// immutable column-store files behind a manifest, not one file: ingest
// shards across member files, scans prune whole files from the manifest's
// zone maps before any I/O, deletes flip deletion-vector bits, and
// compaction folds deletion-heavy members into fresh files — all with
// atomic manifest commits and snapshot-isolated scans. The finale
// publishes the directory over HTTP and scans it remotely through the
// range-read backend. Run with:
//
//	go run ./examples/dataset [dir]
//
// With no argument the dataset is built in a temporary directory and
// removed on exit; with a directory argument it is left in place (so CI
// can audit the output with `bullion fsck`).
package main

import (
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"sync/atomic"

	"bullion"
)

func main() {
	var dir string
	if len(os.Args) > 1 {
		dir = os.Args[1]
	} else {
		tmp, err := os.MkdirTemp("", "bullion-dataset")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "ctr", Type: bullion.Type{Kind: bullion.Float64}},
		bullion.Field{Name: "campaign", Type: bullion.Type{Kind: bullion.String}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Create the dataset and shard ingest across 4 member files: one
	//    pipelined writer per shard, one atomic manifest commit for all.
	ds, err := bullion.CreateDataset(dir, schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	// Batches route round-robin across the shards, so with one batch per
	// shard each member file holds one contiguous uid quarter — disjoint
	// zone maps, the shape file-level pruning exploits best. (Many small
	// batches would interleave ranges across shards and zone maps would
	// overlap.)
	const batchRows = 16384
	const nBatches = 4
	sw, err := ds.ShardedWriter(4)
	if err != nil {
		log.Fatal(err)
	}
	for b := 0; b < nBatches; b++ {
		uid := make(bullion.Int64Data, batchRows)
		ctr := make(bullion.Float64Data, batchRows)
		campaign := make(bullion.BytesData, batchRows)
		for i := range uid {
			uid[i] = int64(b*batchRows + i)
			ctr[i] = float64(i%100) / 100
			// Each shard serves its own campaign set, so the per-member
			// bloom filters are disjoint — string membership prunes files.
			campaign[i] = []byte(fmt.Sprintf("camp-%d-%d", b, i%8))
		}
		batch, err := bullion.NewBatch(schema, []bullion.ColumnData{uid, ctr, campaign})
		if err != nil {
			log.Fatal(err)
		}
		if err := sw.Write(batch); err != nil {
			log.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d rows into %d member files (generation %d)\n",
		ds.NumRows(), ds.NumFiles(), ds.Generation())

	// 2. A selective scan: the manifest's per-file uid zone maps prove
	//    most members can't match, so they are never even opened.
	lo := int64(60000)
	sc, err := ds.Scan(bullion.DatasetScanOptions{
		ScanOptions: bullion.ScanOptions{
			Columns: []string{"uid", "ctr"},
			Filters: []bullion.ColumnFilter{{Column: "uid", Min: &lo}},
		},
		FileConcurrency: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	rows := drain(sc)
	stats := sc.Stats()
	sc.Close()
	fmt.Printf("filtered scan (uid >= %d): %d rows, %d files pruned by manifest, %d scanned, %d reads\n",
		lo, rows, stats.FilesPruned, stats.FilesScanned, stats.ReadOps)

	// 2b. String membership: the manifest carries a bloom filter per
	//     member over its campaign values, so a ValueIn filter prunes the
	//     shards that never served the campaign — again without opening
	//     them. Surviving batches may still hold other campaigns (blooms
	//     are conservative); exact filtering stays with the caller.
	sc, err = ds.Scan(bullion.DatasetScanOptions{
		ScanOptions: bullion.ScanOptions{
			Columns: []string{"uid", "campaign"},
			Filters: []bullion.ColumnFilter{
				{Column: "campaign", ValueIn: [][]byte{[]byte("camp-2-5")}},
			},
		},
		FileConcurrency: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	rows = drain(sc)
	stats = sc.Stats()
	sc.Close()
	fmt.Printf("membership scan (campaign camp-2-5): %d rows, %d files pruned by bloom, %d scanned\n",
		rows, stats.FilesPruned, stats.FilesScanned)

	// 3. Delete the first quarter of the table. Scans filter the rows
	//    immediately; the bytes stay on disk until compaction.
	del := make([]uint64, ds.NumRows()/4)
	for i := range del {
		del[i] = uint64(i)
	}
	if err := ds.Delete(del); err != nil {
		log.Fatal(err)
	}
	bytesBefore := ds.TotalBytes()
	fmt.Printf("deleted %d rows: %d live of %d, still %d bytes on disk\n",
		len(del), ds.NumLiveRows(), ds.NumRows(), bytesBefore)

	// 4. Compact members whose live-row ratio fell below 90%: each victim
	//    is rewritten without its deleted rows and the replacement set is
	//    committed as a new manifest generation. Old files remain for any
	//    in-flight scanner of the previous generation until Vacuum.
	cstats, err := ds.Compact(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted %d files, dropped %d, reclaimed %d rows: %d -> %d bytes (generation %d)\n",
		cstats.FilesCompacted, cstats.FilesDropped, cstats.RowsReclaimed,
		cstats.BytesBefore, cstats.BytesAfter, ds.Generation())
	if removed, err := ds.Vacuum(); err == nil {
		fmt.Printf("vacuumed %d superseded files\n", len(removed))
	}

	// 5. The compacted dataset serves exactly the live rows.
	sc, err = ds.Scan(bullion.DatasetScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows = drain(sc)
	sc.Close()
	fmt.Printf("post-compaction scan: %d rows across %d files\n", rows, ds.NumFiles())

	// 6. Publish the directory over HTTP and scan it remotely: any plain
	//    HTTP server works (here an in-process one); OpenDataset on the
	//    URL reads the same manifest and members through range requests,
	//    wrapped in the retry/hedging policy automatically. Remote
	//    datasets are read-only — writes fail with ErrBackendReadOnly.
	lb, err := bullion.NewLocalBackend(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(bullion.DatasetHTTPHandler(lb))
	defer srv.Close()
	remote, err := bullion.OpenDataset(srv.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	sc, err = remote.Scan(bullion.DatasetScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows = drain(sc)
	rstats := sc.Stats()
	sc.Close()
	fmt.Printf("remote scan over %s: %d rows, %d reads, %d retries, %d hedges, %d degraded members\n",
		srv.URL, rows, rstats.ReadOps, rstats.Retries, rstats.Hedges, len(rstats.DegradedMembers))

	// 7. Scan it again from a fresh handle: member files are immutable,
	//    so the first scan's footers, open handles, and page bytes are
	//    still good in the process-wide artifact cache. The warm rescan
	//    never asks the server for member metadata (or, here, any member
	//    bytes at all) — on a real object store that is the difference
	//    between a scan of round-trips and a scan of decode.
	warm, err := bullion.OpenDataset(srv.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer warm.Close()
	sc, err = warm.Scan(bullion.DatasetScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows = drain(sc)
	wstats := sc.Stats()
	sc.Close()
	fmt.Printf("warm rescan: %d rows; cache served %d footers, %d handles, %d page runs (%d footer misses)\n",
		rows, wstats.Cache.FooterHits, wstats.Cache.HandleHits, wstats.Cache.PageHits,
		wstats.Cache.FooterMisses)
	if wstats.Cache.FooterMisses != 0 {
		log.Fatalf("warm rescan re-parsed %d footers; expected all from cache", wstats.Cache.FooterMisses)
	}

	// 8. Time travel and the training loader. Tag today's generation,
	//    stream a shuffled epoch from the frozen snapshot, and keep
	//    training through whatever the pipeline does to the live table:
	//    the tag pins the generation's files across Append and Vacuum.
	if err := ds.Tag("train-v1", 0); err != nil {
		log.Fatal(err)
	}
	snap, err := bullion.OpenDatasetAt(dir, "train-v1", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()

	ld, err := bullion.NewLoader(snap, bullion.LoaderOptions{
		Columns: []string{"uid", "ctr"}, Seed: 42, ShardRows: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	var epochRows atomic.Int64
	err = ld.Feed(4, func(_ int, b *bullion.Batch) error { // 4 parallel consumers
		epochRows.Add(int64(b.NumRows()))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	lstats := ld.Stats()
	ld.Close()
	fmt.Printf("epoch over tag train-v1: %d rows via %d shuffled shards, planned in %v (zero data reads)\n",
		epochRows.Load(), lstats.EpochShards, lstats.PlanTime)

	// The live table moves on: append fresh rows, vacuum. The tagged
	// generation's files are retained — the snapshot keeps serving.
	extra := make(bullion.Int64Data, 1000)
	ectr := make(bullion.Float64Data, 1000)
	ecmp := make(bullion.BytesData, 1000)
	for i := range extra {
		extra[i] = int64(900000 + i)
		ecmp[i] = []byte("camp-new")
	}
	nb, err := bullion.NewBatch(schema, []bullion.ColumnData{extra, ectr, ecmp})
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Append(nb); err != nil {
		log.Fatal(err)
	}
	vrep, err := ds.VacuumWithReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended 1000 rows, vacuumed %d files; retained generations %v for the tag\n",
		len(vrep.Removed), vrep.RetainedGenerations)

	sc2, err := snap.Scan(bullion.DatasetScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	snapRows := drain(sc2)
	sc2.Close()
	fmt.Printf("snapshot still serves %d rows (live table now has %d)\n", snapRows, ds.NumLiveRows())
	if uint64(snapRows) == ds.NumLiveRows() {
		log.Fatal("snapshot should predate the append")
	}
}

func drain(sc *bullion.DatasetScanner) int {
	rows := 0
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			return rows
		}
		if err != nil {
			log.Fatal(err)
		}
		rows += batch.NumRows()
	}
}
