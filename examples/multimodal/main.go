// Multimodal: quality-aware organization of LLM training data (§2.5,
// Figure 7). The meta table inlines frame highlights and is presorted by
// quality score, so a thresholded training read touches one contiguous
// prefix of pages instead of scattering reads across the file. Run with:
//
//	go run ./examples/multimodal
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"bullion"
)

func main() {
	dir, err := os.MkdirTemp("", "bullion-multimodal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The meta table of Figure 7: text hash, tags, captions, audio
	// snippet, quality score, highlight frame indexes, the inlined
	// reduced-resolution frames, and a reference row into the (external)
	// full-size video table.
	schema, err := bullion.NewSchema(
		bullion.Field{Name: "text_hash", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "tags", Type: bullion.Type{Kind: bullion.Binary}},
		bullion.Field{Name: "caption", Type: bullion.Type{Kind: bullion.Binary}},
		bullion.Field{Name: "audio", Type: bullion.Type{Kind: bullion.Binary}},
		bullion.Field{Name: "quality", Type: bullion.Type{Kind: bullion.Float64}},
		bullion.Field{Name: "frame_idx",
			Type: bullion.Type{Kind: bullion.List, Elem: bullion.Int64}},
		bullion.Field{Name: "frames",
			Type: bullion.Type{Kind: bullion.List, Elem: bullion.Binary}},
		bullion.Field{Name: "video_row", Type: bullion.Type{Kind: bullion.Int64}},
	)
	if err != nil {
		log.Fatal(err)
	}

	const n = 30000
	rng := rand.New(rand.NewSource(3))
	textHash := make(bullion.Int64Data, n)
	tags := make(bullion.BytesData, n)
	caption := make(bullion.BytesData, n)
	audio := make(bullion.BytesData, n)
	quality := make(bullion.Float64Data, n)
	frameIdx := make(bullion.ListInt64Data, n)
	frames := make(bullion.ListBytesData, n)
	videoRow := make(bullion.Int64Data, n)
	for i := 0; i < n; i++ {
		textHash[i] = rng.Int63()
		tags[i] = []byte("web,video")
		caption[i] = []byte(fmt.Sprintf("auto caption %d", i))
		a := make([]byte, 64)
		rng.Read(a)
		audio[i] = a
		q := rng.Float64()
		quality[i] = q * q // most crawled content is low quality
		frameIdx[i] = []int64{0, 3, 6}
		fr := make([][]byte, 3)
		for k := range fr {
			b := make([]byte, 128)
			rng.Read(b)
			fr[k] = b
		}
		frames[i] = fr
		videoRow[i] = int64(i)
	}
	batch, err := bullion.NewBatch(schema, []bullion.ColumnData{
		textHash, tags, caption, audio, quality, frameIdx, frames, videoRow,
	})
	if err != nil {
		log.Fatal(err)
	}

	write := func(name string, presort bool) string {
		path := filepath.Join(dir, name)
		opts := bullion.DefaultOptions()
		opts.RowsPerPage = 256
		if presort {
			opts.QualityColumn = "quality" // §2.5 quality-aware presorting
		}
		w, err := bullion.Create(path, schema, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Write(batch); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		return path
	}
	sortedPath := write("meta_sorted.bln", true)
	unsortedPath := write("meta_unsorted.bln", false)

	// A curation-filtered epoch: train on samples with quality >= 0.6.
	const threshold = 0.6
	sorted, err := bullion.OpenPath(sortedPath)
	if err != nil {
		log.Fatal(err)
	}
	defer sorted.Close()

	// With presorting, quality is descending: binary-search the cutoff,
	// then read only rows [0, cut) of each needed column.
	qcol, _ := sorted.LookupColumn("quality")
	qd, err := sorted.ReadColumnByIndex(qcol)
	if err != nil {
		log.Fatal(err)
	}
	qs := qd.(bullion.Float64Data)
	cut := 0
	for cut < len(qs) && qs[cut] >= threshold {
		cut++
	}
	fcol, _ := sorted.LookupColumn("frames")
	selFrames, err := sorted.ReadRows(fcol, 0, uint64(cut))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("presorted layout: %d/%d samples qualify; read as one contiguous prefix (%d frame lists fetched)\n",
		cut, n, selFrames.Len())

	// The unsorted file must scan everything to find the same samples.
	unsorted, err := bullion.OpenPath(unsortedPath)
	if err != nil {
		log.Fatal(err)
	}
	defer unsorted.Close()
	uq, err := unsorted.ReadColumn("quality")
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for _, q := range uq.(bullion.Float64Data) {
		if q >= threshold {
			count++
		}
	}
	fmt.Printf("unsorted layout: the same %d samples are scattered across every page, forcing full-column fetches\n", count)
	fmt.Println("see `go run ./cmd/experiments -exp fig7` for the measured I/O gap")
}
