// Widetable: the §2.3 scenario — a training job projects a handful of
// features out of thousands. Bullion's compact footer makes opening the
// file and locating columns independent of schema width. Run with:
//
//	go run ./examples/widetable
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"bullion"
)

func main() {
	dir, err := os.MkdirTemp("", "bullion-widetable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "wide.bln")

	// 5,000 feature columns (a 1/4-scale Table 1 ads file), 64 rows each —
	// metadata, not data, is the subject here.
	const nCols = 5000
	const nRows = 64
	fields := make([]bullion.Field, nCols)
	cols := make([]bullion.ColumnData, nCols)
	vals := make(bullion.Int64Data, nRows)
	for r := range vals {
		vals[r] = int64(r * 3)
	}
	for i := 0; i < nCols; i++ {
		fields[i] = bullion.Field{
			Name: fmt.Sprintf("feat_%05d", i),
			Type: bullion.Type{Kind: bullion.Int64},
		}
		cols[i] = vals
	}
	schema, err := bullion.NewSchema(fields...)
	if err != nil {
		log.Fatal(err)
	}

	// A training job projects 10 features (0.2% of the schema). Reorder
	// them to the front at write time (§2.5) so their chunks are adjacent
	// in every row group and the scan below coalesces each group's hot
	// set into a single read.
	want := []string{
		"feat_00000", "feat_00500", "feat_01000", "feat_01500", "feat_02000",
		"feat_02500", "feat_03000", "feat_03500", "feat_04000", "feat_04999",
	}
	schema, perm, err := bullion.ReorderFields(schema, want)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := bullion.NewBatch(schema, bullion.ReorderBatchColumns(cols, perm))
	if err != nil {
		log.Fatal(err)
	}
	// The ingest pipeline encodes the 5,000 column chunks as independent
	// tasks on a GOMAXPROCS worker pool (EncodeWorkers: 0); the file bytes
	// are identical at any worker count.
	opts := bullion.DefaultOptions()
	opts.EncodeWorkers = 0
	start := time.Now()
	w, err := bullion.Create(path, schema, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	ingestTime := time.Since(start)
	st, _ := os.Stat(path)
	fmt.Printf("wrote %d columns x %d rows in %v (%d bytes, %.0f rows/sec)\n",
		nCols, nRows, ingestTime.Round(time.Millisecond), st.Size(),
		float64(nRows)/ingestTime.Seconds())

	start = time.Now()
	f, err := bullion.OpenPath(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	openTime := time.Since(start)

	// Stream the projection the way a training loader would: fixed-size
	// row batches, columns decoded in parallel, emitted in file order.
	// The hot columns are adjacent, so the planner fetches each group's
	// ten chunks in one ReadAt, and ReuseBatches + Recycle keeps the
	// steady-state loop allocation-free.
	start = time.Now()
	sc, err := f.Scan(bullion.ScanOptions{
		Columns:      want,
		BatchRows:    32, // tiny table; production loaders use the 4096 default
		ReuseBatches: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	rows, batches := 0, 0
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		rows += batch.NumRows()
		batches++
		sc.Recycle(batch) // done with this batch: recycle its storage
	}
	scanTime := time.Since(start)

	stats := sc.Stats()
	fmt.Printf("open (footer header only): %v\n", openTime)
	fmt.Printf("stream %d/%d columns:      %v (%d rows in %d batches)\n",
		len(want), nCols, scanTime, rows, batches)
	fmt.Printf("bytes decoded:             %d\n", stats.BytesRead)
	fmt.Printf("physical reads:            %d (%d coalesced bytes, %d wasted)\n",
		stats.ReadOps, stats.CoalescedBytes, stats.WastedBytes)
	fmt.Println("\ncompare: `go run ./cmd/experiments -exp fig5` measures this against")
	fmt.Println("a Parquet-style footer that must deserialize all 5,000 column structs")
}
