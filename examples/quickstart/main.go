// Quickstart: write a Bullion file, project columns back, verify
// integrity. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bullion"
)

func main() {
	dir, err := os.MkdirTemp("", "bullion-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "events.bln")

	// 1. Define a schema: a user id, a timestamp, a score, and a
	//    sequence feature using the sliding-window sparse codec.
	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "ts", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "score", Type: bullion.Type{Kind: bullion.Float64}},
		bullion.Field{Name: "recent_items",
			Type:   bullion.Type{Kind: bullion.List, Elem: bullion.Int64},
			Sparse: true},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a batch of rows (user-and-time sorted, like training data).
	const n = 5000
	uid := make(bullion.Int64Data, n)
	ts := make(bullion.Int64Data, n)
	score := make(bullion.Float64Data, n)
	items := make(bullion.ListInt64Data, n)
	window := []int64{101, 102, 103, 104, 105, 106, 107, 108}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 25)
		ts[i] = 1700000000 + int64(i)
		score[i] = float64(i%100) / 100
		if i%3 == 0 { // a new item drifts into the window
			window = append([]int64{int64(1000 + i)}, window[:len(window)-1]...)
		}
		items[i] = append([]int64{}, window...)
	}
	batch, err := bullion.NewBatch(schema, []bullion.ColumnData{uid, ts, score, items})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Write the file (defaults: Level-2 compliance, cascade encoding).
	w, err := bullion.Create(path, schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("wrote %d rows -> %s (%d bytes; raw int64 data alone would be %d)\n",
		n, filepath.Base(path), st.Size(), n*(8+8+8+8*len(window)))

	// 4. Open and project two of the four columns — Bullion reads only
	//    their pages plus O(log n) footer index bytes.
	f, err := bullion.OpenPath(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	proj, err := f.Project("uid", "recent_items")
	if err != nil {
		log.Fatal(err)
	}
	uids := proj.Columns[0].(bullion.Int64Data)
	seqs := proj.Columns[1].(bullion.ListInt64Data)
	fmt.Printf("row 0:    uid=%d items=%v\n", uids[0], seqs[0])
	fmt.Printf("row 4999: uid=%d items=%v\n", uids[4999], seqs[4999][:4])

	// 5. Verify the Merkle checksum tree.
	if err := f.VerifyChecksums(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checksums OK")
}
