// Compliance: the three §2.1 deletion-compliance levels side by side.
// Level 1 marks rows in the deletion vector (bytes remain on disk);
// Level 2 physically erases them in place, page-locally, and maintains
// the Merkle checksum tree incrementally. Run with:
//
//	go run ./examples/compliance
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bullion"
)

func buildFile(dir string, level bullion.Level) string {
	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "email_hash", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "note", Type: bullion.Type{Kind: bullion.String}},
	)
	if err != nil {
		log.Fatal(err)
	}
	const n = 4000
	uid := make(bullion.Int64Data, n)
	email := make(bullion.Int64Data, n)
	note := make(bullion.BytesData, n)
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 40)
		email[i] = 0x5EC4E7<<24 + int64(i)
		note[i] = []byte(fmt.Sprintf("user-%d private note %d", uid[i], i))
	}
	batch, err := bullion.NewBatch(schema, []bullion.ColumnData{uid, email, note})
	if err != nil {
		log.Fatal(err)
	}
	opts := bullion.DefaultOptions()
	opts.Compliance = level
	path := filepath.Join(dir, fmt.Sprintf("users_level%d.bln", level))
	w, err := bullion.Create(path, schema, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	return path
}

func main() {
	dir, err := os.MkdirTemp("", "bullion-compliance")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// User 17 (rows 680-719) requests erasure under GDPR Article 17.
	rows := make([]uint64, 40)
	for i := range rows {
		rows[i] = uint64(680 + i)
	}

	for _, level := range []bullion.Level{bullion.Level0, bullion.Level1, bullion.Level2} {
		path := buildFile(dir, level)
		f, err := bullion.OpenPath(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- level %d ---\n", level)
		err = f.DeleteRows(rows)
		switch {
		case level == bullion.Level0:
			fmt.Printf("delete: %v\n", err)
			fmt.Println("(level 0 behaves like legacy Parquet/ORC: rewrite the file yourself)")
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("deleted %d rows; %d live rows visible to queries\n",
				len(rows), f.NumLiveRows())
			uids, err := f.ReadColumn("uid")
			if err != nil {
				log.Fatal(err)
			}
			found := false
			for _, v := range uids.(bullion.Int64Data) {
				if v == 17 {
					found = true
				}
			}
			fmt.Printf("user 17 visible to training reads: %v\n", found)
			if err := f.VerifyChecksums(); err != nil {
				log.Fatal(err)
			}
			if level == bullion.Level1 {
				fmt.Println("bytes remain on disk (timely-deletion laws may not accept this)")
			} else {
				fmt.Println("bytes physically erased in place; checksums maintained incrementally")
			}
		}
		f.Close()
		fmt.Println()
	}
}
