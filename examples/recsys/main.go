// Recsys: an ads/recommendation training table with sparse sequence
// features, quantized embeddings, and GDPR-style user erasure — the
// workload §§2.1-2.4 of the paper are designed around. Run with:
//
//	go run ./examples/recsys
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"bullion"
)

func main() {
	dir, err := os.MkdirTemp("", "bullion-recsys")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ads_training.bln")

	// A slice of a production-style ads table: the clk_seq_cids sequence
	// feature (sparse sliding windows), an FP16-quantized embedding, a
	// dual-column business-critical feature, and the CTR label.
	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "clk_seq_cids",
			Type:   bullion.Type{Kind: bullion.List, Elem: bullion.Int64},
			Sparse: true},
		bullion.Field{Name: "user_embed",
			Type: bullion.Type{Kind: bullion.Float32, Quant: bullion.FP16}},
		bullion.Field{Name: "bid_hi", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "bid_lo", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "label", Type: bullion.Type{Kind: bullion.Float64}},
	)
	if err != nil {
		log.Fatal(err)
	}

	const n = 20000
	rng := rand.New(rand.NewSource(7))
	uid := make(bullion.Int64Data, n)
	clk := make(bullion.ListInt64Data, n)
	embed := make(bullion.Float32Data, n)
	bids := make([]float32, n)
	label := make(bullion.Float64Data, n)
	window := make([]int64, 64)
	for i := range window {
		window[i] = rng.Int63n(1 << 32)
	}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 100) // 100 impressions per user, user-sorted
		if rng.Intn(4) == 0 {
			window = append([]int64{rng.Int63n(1 << 32)}, window[:len(window)-1]...)
		}
		clk[i] = append([]int64{}, window...)
		embed[i] = float32(rng.NormFloat64() * 0.3)
		bids[i] = float32(rng.Float64() * 10) // business-critical FP32
		if rng.Intn(50) == 0 {
			label[i] = 1
		}
	}
	// §2.4 dual-column strategy: bid stored as BF16-hi + residual; the
	// join reconstructs exact FP32 for the critical model.
	bidHi, bidLo := bullion.SplitBF16Columns(bids)

	batch, err := bullion.NewBatch(schema, []bullion.ColumnData{
		uid, clk, embed, bullion.Int64Data(bidHi), bullion.Int64Data(bidLo), label,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Ingest through the pipelined writer: row groups of 4,096 so the
	// cascade's per-column selector cache amortizes across groups while
	// the encode workers (GOMAXPROCS by default) overlap column encodes.
	opts := bullion.DefaultOptions()
	opts.GroupRows = 4096
	start := time.Now()
	w, err := bullion.Create(path, schema, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	ingestTime := time.Since(start)
	hits, resamples := w.SelectorStats()
	st, _ := os.Stat(path)
	fmt.Printf("ads table: %d impressions, %d users, %d bytes on disk\n", n, n/100, st.Size())
	fmt.Printf("ingest: %.0f rows/sec; cascade selections: %d sampled, %d reused from cache\n",
		float64(n)/ingestTime.Seconds(), resamples, hits)

	f, err := bullion.OpenPath(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Training loop: stream 3 of 6 columns batch-by-batch through the
	// parallel scanner — the shape a data loader consumes — instead of
	// materializing whole columns.
	sc, err := f.Scan(bullion.ScanOptions{
		Columns:   []string{"clk_seq_cids", "user_embed", "label"},
		BatchRows: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	trainRows, trainBatches, positives := 0, 0, 0
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		trainRows += batch.NumRows()
		trainBatches++
		for _, v := range batch.Columns[2].(bullion.Float64Data) {
			if v == 1 {
				positives++
			}
		}
	}
	sc.Close()
	fmt.Printf("streamed %d training rows in %d batches (%d positive labels, %d bytes decoded)\n",
		trainRows, trainBatches, positives, sc.Stats().BytesRead)

	// The critical model joins the dual columns back to exact FP32.
	bidBatch, err := f.Project("bid_hi", "bid_lo")
	if err != nil {
		log.Fatal(err)
	}
	joined := bullion.JoinBF16Columns(
		bidBatch.Columns[0].(bullion.Int64Data),
		bidBatch.Columns[1].(bullion.Int64Data))
	exact := 0
	for i := range bids {
		if joined[i] == bids[i] {
			exact++
		}
	}
	fmt.Printf("dual-column join: %d/%d bids reconstructed bit-exactly\n", exact, n)

	// A user exercises their GDPR right to erasure: delete user 42's
	// 100 impressions. At Level 2 this physically rewrites only the pages
	// those rows live in.
	rows := make([]uint64, 100)
	for i := range rows {
		rows[i] = uint64(4200 + i)
	}
	if err := f.DeleteRows(rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("erased user 42: %d live rows remain\n", f.NumLiveRows())
	uidsAfter, err := f.ReadColumn("uid")
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range uidsAfter.(bullion.Int64Data) {
		if v == 42 {
			log.Fatal("user 42 still present!")
		}
	}
	if err := f.VerifyChecksums(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("user 42 gone; Merkle checksums still valid")
}
