package bullion_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bullion"
)

// Example shows the full lifecycle: schema, write, project, delete, verify.
func Example() {
	dir, _ := os.MkdirTemp("", "bullion-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "t.bln")

	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "ctr", Type: bullion.Type{Kind: bullion.Float64}},
	)
	if err != nil {
		log.Fatal(err)
	}
	uid := bullion.Int64Data{1, 1, 2, 2}
	ctr := bullion.Float64Data{0.1, 0.2, 0.3, 0.4}
	batch, _ := bullion.NewBatch(schema, []bullion.ColumnData{uid, ctr})

	w, _ := bullion.Create(path, schema, nil)
	_ = w.Write(batch)
	_ = w.Close()

	f, _ := bullion.OpenPath(path)
	defer f.Close()
	_ = f.DeleteRows([]uint64{0, 1}) // erase user 1 in place
	proj, _ := f.Project("uid")
	fmt.Println("live uids:", proj.Columns[0].(bullion.Int64Data))
	fmt.Println("checksums:", f.VerifyChecksums() == nil)
	// Output:
	// live uids: [2 2]
	// checksums: true
}

// ExampleSplitBF16Columns demonstrates the §2.4 dual-column strategy.
func ExampleSplitBF16Columns() {
	bids := []float32{1.5, 2.25, 3.125}
	hi, lo := bullion.SplitBF16Columns(bids)
	joined := bullion.JoinBF16Columns(hi, lo)
	fmt.Println(joined[0] == bids[0], joined[1] == bids[1], joined[2] == bids[2])
	// Output: true true true
}

// ExampleQuantize shows storage quantization to FP16.
func ExampleQuantize() {
	bits, _ := bullion.Quantize([]float32{0.5, -0.25}, bullion.FP16)
	back, _ := bullion.Dequantize(bits, bullion.FP16)
	fmt.Println(back[0], back[1])
	// Output: 0.5 -0.25
}

// ExampleReorderFields shows §2.5 hot-column reordering.
func ExampleReorderFields() {
	schema, _ := bullion.NewSchema(
		bullion.Field{Name: "cold_a", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "hot", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "cold_b", Type: bullion.Type{Kind: bullion.Int64}},
	)
	reordered, _, _ := bullion.ReorderFields(schema, []string{"hot"})
	for _, f := range reordered.Fields {
		fmt.Println(f.Name)
	}
	// Output:
	// hot
	// cold_a
	// cold_b
}
