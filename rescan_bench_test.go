package bullion

// Repeated-scan benchmarks for the shared artifact cache (recorded in
// BENCH_cache.json): each iteration opens a fresh Dataset handle, runs
// one selective 2-column scan over an 8-member dataset, and closes —
// the serving-tier access pattern where handle lifetime is short but
// the dataset is hot. The cold variants disable caching, so every
// iteration re-pays member opens, footer parses, and data reads; the
// warm variants share one pre-warmed cache across iterations, so a
// handle's scans are served from memory. Two storage models:
//
//   - latency: every member read costs 1ms (object-storage model). The
//     acceptance comparison: warm must beat cold by >=5x, with zero
//     member metadata reads (footer trailer/block) in the warm loop.
//   - HTTP: a real httptest range-read server. The reqs/op metric shows
//     the round-trip collapse (HEAD + footer GETs + data GETs per
//     member cold; nothing but the manifest probes warm).

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const (
	rescanFiles   = 8
	rescanRows    = 4096
	rescanCols    = 8
	rescanLatency = time.Millisecond
)

// rescanHot mirrors dsBenchHot: two physically adjacent columns, one
// coalesced data run per member.
var rescanHot = []string{"key", "feat_001"}

var rescanBench struct {
	once sync.Once
	dir  string
}

func rescanDir(b *testing.B) string {
	b.Helper()
	rescanBench.once.Do(func() {
		// Not b.TempDir(): the dataset outlives the benchmark that builds
		// it (shared across the cold/warm × latency/HTTP variants).
		dir, err := os.MkdirTemp("", "bullion-rescan")
		if err != nil {
			panic(err)
		}
		fields := make([]Field, rescanCols)
		for c := range fields {
			fields[c] = Field{Name: fmt.Sprintf("feat_%03d", c), Type: Type{Kind: Int64}}
		}
		fields[0].Name = "key"
		schema, err := NewSchema(fields...)
		if err != nil {
			panic(err)
		}
		opts := DefaultOptions()
		opts.GroupRows = rescanRows
		ds, err := CreateDataset(dir, schema, &DatasetOptions{Writer: opts})
		if err != nil {
			panic(err)
		}
		for f := 0; f < rescanFiles; f++ {
			cols := make([]ColumnData, rescanCols)
			for c := range cols {
				vals := make(Int64Data, rescanRows)
				for r := range vals {
					vals[r] = int64(f*rescanRows + r + c)
				}
				cols[c] = vals
			}
			batch, err := NewBatch(schema, cols)
			if err != nil {
				panic(err)
			}
			if err := ds.Append(batch); err != nil {
				panic(err)
			}
		}
		ds.Close()
		rescanBench.dir = dir
	})
	return rescanBench.dir
}

// meteredReader models 1ms-latency storage and classifies member reads:
// a read ending within the footer region (last 8 bytes hold the
// trailer, the footer block ends 8 bytes before EOF) is metadata.
type meteredReader struct {
	r    io.ReaderAt
	size int64
	meta *atomic.Int64
	data *atomic.Int64
}

func (m *meteredReader) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(rescanLatency)
	if off+int64(len(p)) >= m.size-8 {
		m.meta.Add(1)
	} else {
		m.data.Add(1)
	}
	return m.r.ReadAt(p, off)
}

// rescanOnce is one serving-tier request: open, selectively scan, close.
func rescanOnce(b *testing.B, dir string, opts *DatasetOptions) {
	b.Helper()
	d, err := OpenDataset(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	sc, err := d.Scan(DatasetScanOptions{
		ScanOptions: ScanOptions{
			Columns:      rescanHot,
			BatchRows:    rescanRows,
			Workers:      1,
			ReuseBatches: true,
		},
		FileConcurrency: 1, // serial: the latency axis, as in dsBench
	})
	if err != nil {
		b.Fatal(err)
	}
	rows := 0
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		rows += batch.NumRows()
		sc.Recycle(batch)
	}
	sc.Close()
	if rows != rescanFiles*rescanRows {
		b.Fatalf("scanned %d rows, want %d", rows, rescanFiles*rescanRows)
	}
}

func benchRescanLatency(b *testing.B, warm bool) {
	dir := rescanDir(b)
	var meta, data atomic.Int64
	opts := &DatasetOptions{
		WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
			return &meteredReader{r: r, size: size, meta: &meta, data: &data}
		},
	}
	if warm {
		c := NewCache(CacheOptions{})
		defer c.Close()
		opts.Cache = c
		rescanOnce(b, dir, opts) // fill the cache outside the timer
	} else {
		opts.DisableCache = true
	}
	meta.Store(0)
	data.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rescanOnce(b, dir, opts)
	}
	b.StopTimer()
	b.ReportMetric(float64(meta.Load())/float64(b.N), "metareads/op")
	b.ReportMetric(float64(data.Load())/float64(b.N), "datareads/op")
	if warm && meta.Load() != 0 {
		b.Fatalf("warm rescans issued %d member metadata reads, want 0", meta.Load())
	}
	if warm && data.Load() != 0 {
		b.Fatalf("warm rescans issued %d member data reads, want 0", data.Load())
	}
}

// The acceptance pair: warm must be >=5x cold (BENCH_cache.json), with
// the warm loop touching the modeled backend zero times.
func BenchmarkDatasetRescanColdLatency(b *testing.B) { benchRescanLatency(b, false) }
func BenchmarkDatasetRescanWarmLatency(b *testing.B) { benchRescanLatency(b, true) }

func benchRescanHTTP(b *testing.B, warm bool) {
	dir := rescanDir(b)
	backend, err := NewLocalBackend(dir)
	if err != nil {
		b.Fatal(err)
	}
	var total, member atomic.Int64
	h := DatasetHTTPHandler(backend)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total.Add(1)
		if len(r.URL.Path) > 6 && r.URL.Path[:6] == "/part-" {
			member.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	opts := &DatasetOptions{}
	if warm {
		c := NewCache(CacheOptions{})
		defer c.Close()
		opts.Cache = c
		rescanOnce(b, srv.URL, opts)
	} else {
		opts.DisableCache = true
	}
	total.Store(0)
	member.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rescanOnce(b, srv.URL, opts)
	}
	b.StopTimer()
	b.ReportMetric(float64(total.Load())/float64(b.N), "reqs/op")
	b.ReportMetric(float64(member.Load())/float64(b.N), "memberreqs/op")
	if warm && member.Load() != 0 {
		b.Fatalf("warm rescans issued %d member requests, want 0", member.Load())
	}
}

// HTTP pair: warm rescans collapse to the two manifest probes per open;
// every member HEAD/GET disappears into the cache.
func BenchmarkDatasetRescanColdHTTP(b *testing.B) { benchRescanHTTP(b, false) }
func BenchmarkDatasetRescanWarmHTTP(b *testing.B) { benchRescanHTTP(b, true) }
