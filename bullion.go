// Package bullion is a columnar storage library for machine-learning
// workloads, implementing the design of "Bullion: A Column Store for
// Machine Learning" (CIDR 2025):
//
//   - a cascading encoding framework with the full Table 2 catalog and a
//     sampling-based selector (§2.6)
//   - deletion compliance at three levels, including in-place physical
//     erasure with Merkle-tree checksum maintenance (§2.1, Figure 2)
//   - sliding-window delta encoding for long-sequence sparse features
//     such as clk_seq_cids (§2.2, Figures 3-4)
//   - a compact binary footer read without deserialization, keeping
//     wide-table projection flat in the number of columns (§2.3, Figure 5)
//   - storage quantization: FP16 / BF16 / TF32 / FP8 and the dual-column
//     FP32 decomposition (§2.4, Figure 6)
//   - quality-aware row organization for multimodal training data (§2.5,
//     Figure 7)
//
// Quickstart — writing and whole-column projection:
//
//	schema, _ := bullion.NewSchema(
//	    bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
//	    bullion.Field{Name: "clk_seq_cids",
//	        Type:   bullion.Type{Kind: bullion.List, Elem: bullion.Int64},
//	        Sparse: true},
//	)
//	w, _ := bullion.Create("ads.bln", schema, nil)
//	_ = w.Write(batch)
//	_ = w.Close()
//
//	f, _ := bullion.OpenPath("ads.bln")
//	defer f.Close()
//	cols, _ := f.Project("clk_seq_cids")
//
// Streaming scans — the training-loader read path. Instead of
// materializing whole columns, Scan iterates the projection in row
// batches (BatchRows rows each, default DefaultScanBatchRows = 4096),
// decoding the columns of in-flight batches on a GOMAXPROCS-bounded
// worker pool while emitting batches in file order:
//
//	sc, _ := f.Scan(bullion.ScanOptions{
//	    Columns:   []string{"uid", "clk_seq_cids"},
//	    BatchRows: 4096, // rows per batch (0 = default)
//	    Workers:   0,    // 0 = GOMAXPROCS
//	    // Optional: Range restricts the scan; Hi must not exceed
//	    // f.NumRows(), e.g. &bullion.RowRange{Lo: 0, Hi: f.NumRows()}.
//	})
//	defer sc.Close()
//	for {
//	    batch, err := sc.Next()
//	    if err == io.EOF {
//	        break
//	    }
//	    if err != nil {
//	        return err
//	    }
//	    feed(batch) // aligned columns, deleted rows already filtered
//	}
//
// Scans prune work before any I/O: batches outside Range are never
// planned, all-deleted batches are dropped, and ColumnFilter statistics
// predicates skip batches whose footer statistics prove no match (see
// "Pruning and statistics" below).
//
// # Pruning and statistics
//
// The writer records three statistics families in the footer (format v3)
// so selective scans can skip data without reading it:
//
//   - Zone maps. Every page carries min/max bounds: native int64 order
//     for int64/int32 columns (nullable included, nulls excluded from the
//     bounds), IEEE float order for float64/float32 columns (stored as
//     Float64bits, flagged StatFloatBits; quantized float32 bounds cover
//     the values as decoded, not as ingested; NaNs constrain nothing).
//     The footer also persists the per-column fold of all page bounds as
//     file-level column stats.
//   - Bloom filters. Byte-string (Binary/String) columns get a
//     split-block bloom filter per page and one per column over the
//     file's distinct values, sized by Options.BloomBitsPerValue
//     (default 12 bits per distinct value, ~0.5% false positives;
//     negative disables them).
//   - Null counts, per page and per column.
//
// ColumnFilter exposes one predicate class per family: Min/Max (int
// range), FloatMin/FloatMax (float range), and ValueIn (byte-string
// membership). Pruning happens at every level that has statistics: the
// scan planner drops the whole file when the file-level stats or column
// bloom exclude a filter (no page is ever consulted), drops batches whose
// overlapping pages all exclude it, and — through the dataset manifest,
// which lifts the file-level stats at commit — drops whole member files
// without opening them. Pruning is always conservative: surviving batches
// are returned in full and may contain non-matching rows (blooms also
// admit false positives), so exact filtering remains the caller's job,
// but no row that could match is ever dropped (property-tested under
// -race by the prune harness). Files written before format v3 report no
// float or bloom statistics and simply never prune on those predicates.
//
// After Close, Writer.WrittenStats surfaces the same statistics the
// footer just persisted — rows, bytes, per-column zone maps and blooms —
// which is how the dataset layer commits shard files without reopening
// them.
//
// # Reading at scale
//
// The scan path is built to be I/O-minimal and allocation-flat, pairing
// the paper's §2.5 levers:
//
//  1. Reorder hot features at write time. ReorderFields moves the
//     frequently-read columns to the front of the schema, so their chunks
//     are physically adjacent within every row group.
//
//  2. Coalesced reads. Scan plans, per batch, the maximal byte-adjacent
//     page runs across all projected columns and fetches each run with a
//     single read of up to 1.25 MiB (core.CoalesceLimit); decode workers
//     slice their pages out of the shared run buffer zero-copy. Runs
//     separated by at most ScanOptions.CoalesceGap cold bytes (default
//     DefaultCoalesceGap = 4 KiB) merge too — a few wasted kilobytes beat
//     a second seek or object-storage request. Cross-column merging needs
//     the projected chunks adjacent within the batch's span, so set
//     BatchRows to the writer's GroupRows for I/O-bound scans: a
//     hot-reordered projection then costs one read per row group.
//
//  3. Batch recycling. With ScanOptions.ReuseBatches, return each
//     finished batch via Scanner.Recycle and later batches decode into
//     its storage; combined with the scanner's pooled read buffers and
//     decode scratch, steady-state Next calls are allocation-free for
//     fixed-width columns.
//
// Putting the three together:
//
//	sc, _ := f.Scan(bullion.ScanOptions{
//	    Columns:      hotFeatures, // written via ReorderFields
//	    BatchRows:    groupRows,   // align batches with row groups
//	    ReuseBatches: true,
//	})
//	defer sc.Close()
//	for {
//	    batch, err := sc.Next()
//	    if err == io.EOF {
//	        break
//	    }
//	    if err != nil {
//	        return err
//	    }
//	    feed(batch)
//	    sc.Recycle(batch) // batch must not be read after this
//	}
//
// ScanStats reports the effect: ReadOps (physical reads issued),
// CoalescedBytes (bytes fetched by multi-column reads), and WastedBytes
// (gap bytes read through). ScanOptions.DisableCoalesce pins the
// per-column read path; both paths return identical batches. Byte-string
// columns decode zero-copy out of the read buffers, so projections that
// include them keep the buffers alive for the batch's lifetime instead of
// pooling them.
//
// Decode kernels. Once the bytes are in memory, scans are decode-bound,
// so the hot inner loops decode word-at-a-time rather than value-at-a-
// time: bit-packed integer payloads (FixedBitWidth, FOR, SIMDFastPFOR,
// SIMDFastBP128, Delta's sub-streams) unpack eight values per group from
// unaligned 64-bit loads, with frame-of-reference bases and zigzag
// decoding fused into the same pass; run-length and constant pages fill
// output by copy doubling (memmove-speed); and the Gorilla/Chimp float
// decoders read each value's control bits, window header, and mantissa
// from a single 64-bit peek instead of three bit-reader calls. The
// kernels are exact drop-ins — a scalar reference path is kept behind a
// test hook and every scheme is property-tested byte-identical against
// it — and they keep fixed-width decodes at zero allocations per page on
// the reuse path above. For timestamp-like columns (drifting arrival
// cadence, monotone ids) the cascade also offers DeltaDelta, a zigzag
// delta-of-delta scheme whose second-order residuals bit-pack far
// narrower than first-order deltas.
//
// # Writing at scale
//
// The write path is a pipeline, mirroring the streaming scan: the calling
// goroutine only assembles row groups (batch buffering, §2.5 quality
// presorting); each full group's columns are encoded as independent tasks
// — cascade selection, page encoding, zone-map statistics, Merkle leaf
// hashes — on a worker pool, while a single serializer goroutine writes
// finished groups to the file strictly in order:
//
//	w, _ := bullion.Create("ads.bln", schema, &bullion.Options{
//	    EncodeWorkers:     0, // encode parallelism; 0 = GOMAXPROCS
//	    MaxInflightGroups: 0, // memory bound; 0 = EncodeWorkers + 2
//	})
//	for batch := range batches {
//	    if err := w.Write(batch); err != nil { // full groups encode behind Write
//	        return err
//	    }
//	}
//	if err := w.Close(); err != nil { // drains the pipeline, writes the footer
//	    return err
//	}
//
// Always Close a writer, even when abandoning the file after an unrelated
// error: Close (or a failed Write) is what stops the pipeline's encode and
// serializer goroutines.
//
// Output bytes are identical at every EncodeWorkers setting: each column's
// pages are encoded in file order and the serializer alone assigns
// offsets, so worker scheduling never reaches the file layout. Writer
// errors are sticky — after any encode or write failure every subsequent
// Write/Close returns the original error and no footer is written, so a
// failed file can never look complete.
//
// Cascade selection itself is amortized (the LEA-style advisor pattern):
// each column remembers its chosen scheme per stream and reuses it for
// subsequent pages, re-running the §2.6 sampling pass only when the
// encoded-size ratio drifts past EncodingOptions.ResampleDrift (default
// ±25% relative). Set ResampleDrift negative to re-select on every page
// (the pre-pipeline behavior); Writer.SelectorStats reports the realized
// reuse. Sparse (§2.2) columns use their own composite codec and bypass
// the selector cache.
//
// # Datasets and compaction
//
// Training tables are fleets of immutable column-store files, not one
// file. A Dataset is a directory of member files described by a versioned
// JSON manifest that records, per file, the row and live-row counts and
// per-column min/max zone maps lifted from the footers when the file was
// committed — per-file statistics are computed once and reused by every
// later open and scan, never recomputed per open:
//
//	ds, _ := bullion.CreateDataset("ads.blnds", schema, nil)
//	sw, _ := ds.ShardedWriter(4) // route ingest across 4 member files
//	for batch := range batches {
//	    _ = sw.Write(batch)
//	}
//	_ = sw.Close() // one atomic manifest commit adds all 4 files
//
//	sc, _ := ds.Scan(bullion.DatasetScanOptions{
//	    ScanOptions:     bullion.ScanOptions{Columns: hotFeatures, Filters: filters},
//	    FileConcurrency: 8, // member files streamed concurrently
//	})
//	defer sc.Close()
//	// Next returns batches in manifest file order; the loop is identical
//	// to the single-file Scanner's.
//
// Dataset.Scan prunes whole member files before any I/O: files outside
// ScanOptions.Range (interpreted over the dataset's concatenated global
// row space) and files whose manifest zone maps prove a ColumnFilter
// cannot match are never opened at all. Surviving files stream through
// one per-file scan engine each, up to FileConcurrency at a time, and
// Stats() aggregates the per-file ScanStats plus FilesPruned/FilesScanned
// counters.
//
// Deletion and compaction split the paper's §2.1 story across two
// timescales: Dataset.Delete flips deletion-vector bits in the affected
// members (rows keep being filtered from scans immediately), and
// Dataset.Compact later folds every member whose live-row ratio has
// dropped below a threshold into a fresh file without its deleted rows,
// committing the result as a new manifest generation. Commits are
// write-temp + rename atomic, and scanners snapshot their generation at
// Scan time: a scan running across a Delete or Compact keeps serving the
// files of its own generation (superseded files stay on disk until
// Dataset.Vacuum). Datasets default to compliance Level 1 for exactly
// this reason — Level-2 in-place erasure would rewrite page bytes under
// older generations' readers.
//
// Commits are durable as well as atomic: member contents are fsynced
// before they are renamed into place, every rename is followed by a
// directory sync, and the CURRENT generation pointer swap is the single
// point of no return (a commit racing another handle fails cleanly with
// ErrGenerationConflict before touching any published file). All dataset
// I/O flows through a pluggable storage backend (DatasetOptions.Backend);
// FsckDataset audits a directory offline and classifies crash debris,
// which Open sweeps and Vacuum reclaims. The full contract — including
// the two crash models the fault-injection matrix replays — is documented
// in bullion/internal/dataset and bullion/internal/storage.
//
// # Remote datasets and resilience
//
// A dataset published behind any HTTP(S) server that honors Range
// requests — an object-store gateway, nginx, or DatasetHTTPHandler —
// opens directly from its URL:
//
//	ds, _ := bullion.OpenDataset("https://data.example.com/ads.blnds", nil)
//	sc, _ := ds.Scan(bullion.DatasetScanOptions{
//	    ScanOptions: bullion.ScanOptions{Columns: hotFeatures},
//	    Degraded:    true, // skip+report unreachable members
//	})
//
// The handle is read-only (mutators fail with ErrBackendReadOnly), and
// its reads flow through two layers that are also exposed standalone:
//
//   - NewHTTPBackend: a StorageBackend over HTTP range reads. Opening a
//     member HEADs it once and pins its strong ETag; every range GET
//     then carries If-Match, so a file replaced mid-scan surfaces as
//     ErrChangedUnderRead instead of torn bytes. List is unsupported
//     (recovery sweeps, Vacuum, and fsck orphan classification degrade
//     gracefully).
//
//   - NewResilientBackend: a backend-agnostic wrapper adding per-read
//     deadlines, capped exponential backoff with jitter on transient
//     errors (timeouts, 5xx, connection resets — never 4xx, not-found,
//     or integrity failures), hedged reads (when a read outlives the
//     backend's tracked p95 latency a second identical request races
//     it; the first success wins and the loser is cancelled and joined,
//     so no goroutine or buffer outlives the call), and a
//     consecutive-failure circuit breaker that fails fast with
//     ErrCircuitOpen while the remote is down, probing again after a
//     cooldown. Writes pass through un-retried: the dataset commit
//     protocol already makes them safe to fail, and blind retries of
//     non-idempotent operations are not.
//
// DatasetScanOptions.Degraded chooses availability over completeness
// for scans: a member still unreachable after the wrapper's full retry
// budget is skipped and reported in DatasetScanStats.DegradedMembers —
// never dropped silently — while DatasetScanStats also counts the
// Retries, Hedges, and HedgeWins spent on the scanner's behalf.
// ResilienceOptions tunes every knob (deadlines, retry budget, backoff
// shape, hedge delay, breaker thresholds); the zero value gives the
// defaults OpenDataset uses for http(s) URLs.
//
// # Caching and memory tiering
//
// Committed member files are immutable — a dataset mutation publishes
// new files under new names and bumps the manifest generation — so
// everything derived from a member's bytes can be cached for as long as
// the member exists. Datasets share a process-wide artifact cache
// (private or disabled per handle via DatasetOptions) with three tiers:
//
//   - parsed footers and column bloom filters, keyed by member identity
//     and version, with singleflight — N concurrent scanners opening the
//     same member pay exactly one footer parse and one bloom decode;
//   - open backend handles, a refcounted LRU bounding live file
//     descriptors and HTTP HEAD+ETag pins across Dataset handles;
//   - a segmented-LRU byte cache of coalesced page runs in front of every
//     member read, with per-dataset budgets (DatasetOptions.CacheBytes)
//     and an optional materialize mode (DatasetOptions.PinHotMembers)
//     that pins small hot members wholly in RAM.
//
// The net effect is that a warm selective re-scan touches the backend
// zero times for metadata and only for uncached data runs, which on a
// remote dataset is the difference between a scan dominated by
// round-trips and one dominated by decode. Versioned keys make
// invalidation automatic: a replaced member (new ETag or new
// row/byte accounting) can never serve stale bytes, and Vacuum
// eagerly drops the entries of files it removes. Scan-visible effect is
// reported per scanner in DatasetScanStats.Cache and cache-wide via
// Dataset.CacheStats.
//
// # Training loaders and time travel
//
// Training jobs need two things a mutable dataset does not naturally
// give them: a frozen view that survives the days a run takes, and a
// shuffled epoch stream they can stop and resume exactly. Both are built
// on manifest generations.
//
// Time travel. Dataset.Tag names the current (or any still-present)
// generation; the tag is stored in the manifest and carried forward by
// every later commit, so it is as crash-safe as the data itself —
// creating or deleting a tag is an ordinary CAS commit. OpenDatasetAt
// opens a read-only handle pinned to a tag (or a numeric generation):
//
//	_ = ds.Tag("train-v1", 0)            // freeze the current generation
//	snap, _ := bullion.OpenDatasetAt("ads.blnds", "train-v1", nil)
//	defer snap.Close()                   // mutators fail ErrSnapshotReadOnly
//
// Vacuum is retention-aware: generations that are tagged, pinned by an
// open snapshot handle, or pinned by a live scanner in this process keep
// their manifest and member files, and VacuumWithReport says exactly
// what was kept and why (Fsck audits the same retained set, so a tagged
// generation with a missing member fails fsck, not the next training
// run). Untag and re-vacuum to reclaim. One caveat is deliberate:
// Dataset.Delete flips deletion bits inside member files that snapshots
// share, so compliance deletes propagate into tagged history — deletion
// compliance outranks replay stability (§2.1).
//
// Loaders. NewLoader plans a shuffled multi-epoch stream over a handle's
// generation from the manifest's row counts alone — the plan costs zero
// data reads. The global row space is cut into ShardRows-sized shards
// (never straddling a member file), each epoch visits the shards in a
// seeded pseudorandom order, and batches stream through the dataset scan
// engine — shared page cache, pruning, parallel decode — with ShardAhead
// shards decoding ahead of the emission cursor:
//
//	ld, _ := bullion.NewLoader(snap, bullion.LoaderOptions{
//	    Columns: hotFeatures, Seed: 42, Epochs: 3,
//	    TargetRowsPerSec: 500_000, // optional pacing toward the GPU budget
//	})
//	defer ld.Close()
//	err := ld.Feed(8, func(consumer int, b *bullion.Batch) error {
//	    return train(consumer, b) // 8 parallel consumers, first error wins
//	})
//
// The stream is a pure function of (generation, seed, shard/batch
// sizes): two runs with the same identity emit byte-identical batch
// sequences, on any machine. Loader.Checkpoint captures that identity
// plus the (epoch, shard, batch) cursor — a few integers — and
// ResumeLoader continues the exact stream, mid-shard, against a handle
// opened at the same generation, no matter what was appended, deleted,
// or vacuumed in between (the tag kept the bytes). Single-consumer
// iteration uses Next directly; Loader.Stats reports plan cost and
// progress.
package bullion

import (
	"fmt"
	"io"
	"net/http"
	"os"

	"bullion/internal/cache"
	"bullion/internal/core"
	"bullion/internal/dataset"
	"bullion/internal/enc"
	"bullion/internal/loader"
	"bullion/internal/quant"
	"bullion/internal/sparse"
	"bullion/internal/storage"
)

// Schema, fields, and column containers re-exported from the core format.
type (
	// Schema is an ordered set of fields.
	Schema = core.Schema
	// Field is one column definition.
	Field = core.Field
	// Type is a column's logical type.
	Type = core.Type
	// Kind is a physical type family.
	Kind = core.Kind
	// Batch is a set of aligned column slices.
	Batch = core.Batch
	// ColumnData is a typed in-memory column.
	ColumnData = core.ColumnData

	// Int64Data is a non-null int64 column.
	Int64Data = core.Int64Data
	// NullableInt64Data is an int64 column with a validity mask.
	NullableInt64Data = core.NullableInt64Data
	// Float64Data is a float64 column.
	Float64Data = core.Float64Data
	// Float32Data is a float32 column (stored per the field's Quant format).
	Float32Data = core.Float32Data
	// BoolData is a boolean column.
	BoolData = core.BoolData
	// BytesData is a binary/string column.
	BytesData = core.BytesData
	// ListInt64Data is a list<int64> column.
	ListInt64Data = core.ListInt64Data
	// ListFloat32Data is a list<float> column.
	ListFloat32Data = core.ListFloat32Data
	// ListFloat64Data is a list<double> column.
	ListFloat64Data = core.ListFloat64Data
	// ListBytesData is a list<binary> column.
	ListBytesData = core.ListBytesData
	// ListListInt64Data is a list<list<int64>> column.
	ListListInt64Data = core.ListListInt64Data

	// Options configures the writer.
	Options = core.Options
	// Level is a deletion-compliance level (§2.1).
	Level = core.Level
	// EncodingOptions steers the §2.6 cascade selector.
	EncodingOptions = enc.Options
	// SparseOptions configures the §2.2 sliding-window codec.
	SparseOptions = sparse.Options
	// QuantFormat is a §2.4 storage float format.
	QuantFormat = quant.Format

	// ScanOptions configures a streaming scan (File.Scan).
	ScanOptions = core.ScanOptions
	// Scanner streams a projected column set in row batches.
	Scanner = core.Scanner
	// RowRange restricts a scan to global rows [Lo, Hi).
	RowRange = core.RowRange
	// ColumnFilter is a statistics batch-pruning predicate: int range,
	// float range, or byte-string membership (see "Pruning and
	// statistics").
	ColumnFilter = core.ColumnFilter
	// ScanStats reports a scan's physical work.
	ScanStats = core.ScanStats
	// PageStats is the per-page min/max/null zone map.
	PageStats = core.PageStats
	// WrittenStats is a closed Writer's own account of the file it wrote.
	WrittenStats = core.WrittenStats
)

// DefaultScanBatchRows is the default Scanner batch size.
const DefaultScanBatchRows = core.DefaultScanBatchRows

// DefaultCoalesceGap is the default ScanOptions.CoalesceGap: the largest
// run of cold bytes a coalesced scan read will fetch to avoid splitting
// into two I/O operations.
const DefaultCoalesceGap = core.DefaultCoalesceGap

// Column kinds.
const (
	Int64    = core.Int64
	Int32    = core.Int32
	Float64  = core.Float64
	Float32  = core.Float32
	Bool     = core.Bool
	Binary   = core.Binary
	String   = core.String
	List     = core.List
	ListList = core.ListList
)

// Deletion-compliance levels (§2.1): Level0 behaves like legacy Parquet,
// Level1 maintains a deletion vector, Level2 adds in-place physical
// erasure.
const (
	Level0 = core.Level0
	Level1 = core.Level1
	Level2 = core.Level2
)

// Storage quantization formats (§2.4, Figure 6).
const (
	FP32    = quant.FP32
	FP64    = quant.FP64
	TF32    = quant.TF32
	FP16    = quant.FP16
	BF16    = quant.BF16
	FP8E4M3 = quant.FP8E4M3
	FP8E5M2 = quant.FP8E5M2
)

// NewSchema validates and constructs a schema.
func NewSchema(fields ...Field) (*Schema, error) { return core.NewSchema(fields...) }

// NewBatch validates column/shape agreement against the schema.
func NewBatch(schema *Schema, columns []ColumnData) (*Batch, error) {
	return core.NewBatch(schema, columns)
}

// DefaultOptions returns the writer defaults: 1024-row pages, 64Ki-row
// groups, compliance Level 2, the default cascade, GOMAXPROCS encode
// workers.
func DefaultOptions() *Options { return core.DefaultOptions() }

// DefaultEncodingOptions returns the default cascade selector settings.
func DefaultEncodingOptions() *EncodingOptions { return enc.DefaultOptions() }

// Writer streams batches into a Bullion file.
type Writer struct {
	cw   *core.Writer
	file *os.File // non-nil when created via Create
}

// NewWriter writes a Bullion file to any io.Writer.
func NewWriter(w io.Writer, schema *Schema, opts *Options) (*Writer, error) {
	cw, err := core.NewWriter(w, schema, opts)
	if err != nil {
		return nil, err
	}
	return &Writer{cw: cw}, nil
}

// Create creates (or truncates) a file at path and returns a writer to it.
func Create(path string, schema *Schema, opts *Options) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	cw, err := core.NewWriter(f, schema, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{cw: cw, file: f}, nil
}

// Write appends a batch. Full row groups are encoded on the writer's
// worker pool behind this call; an error from a previous group's encode
// or write surfaces here (sticky).
func (w *Writer) Write(batch *Batch) error { return w.cw.Write(batch) }

// SelectorStats reports cascade-selector cache reuse (decisions reused vs
// full sampling passes) across all columns. Call it after Close.
func (w *Writer) SelectorStats() (hits, resamples int64) { return w.cw.SelectorStats() }

// WrittenStats reports the closed file's statistics — rows, total bytes,
// and per-column zone maps/blooms identical to a reopened file's Stats().
// It returns nil until Close has succeeded.
func (w *Writer) WrittenStats() *WrittenStats { return w.cw.WrittenStats() }

// Close flushes buffered rows, writes the footer, and closes the file when
// the writer owns one.
func (w *Writer) Close() error {
	err := w.cw.Close()
	if w.file != nil {
		if cerr := w.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// File is a read (and, for deletion, write) handle over a Bullion file.
type File struct {
	cf   *core.File
	file *os.File // non-nil when opened via OpenPath
}

// Open reads the footer from an io.ReaderAt.
func Open(r io.ReaderAt, size int64) (*File, error) {
	cf, err := core.Open(r, size)
	if err != nil {
		return nil, err
	}
	return &File{cf: cf}, nil
}

// OpenPath opens a Bullion file on disk read-write (read-write so that
// DeleteRows can erase in place; the file is never modified otherwise).
func OpenPath(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	cf, err := core.Open(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{cf: cf, file: f}, nil
}

// Close releases the underlying file handle, if owned.
func (f *File) Close() error {
	if f.file != nil {
		return f.file.Close()
	}
	return nil
}

// NumRows returns the logical row count (including deleted rows).
func (f *File) NumRows() uint64 { return f.cf.NumRows() }

// NumLiveRows returns rows not marked deleted.
func (f *File) NumLiveRows() uint64 { return f.cf.NumLiveRows() }

// NumColumns returns the column count.
func (f *File) NumColumns() int { return f.cf.NumColumns() }

// Compliance returns the file's deletion-compliance level.
func (f *File) Compliance() Level { return f.cf.Compliance() }

// Schema materializes the full schema (O(columns); projections should use
// LookupColumn instead).
func (f *File) Schema() *Schema { return f.cf.Schema() }

// LookupColumn resolves a column name via the footer's hash index.
func (f *File) LookupColumn(name string) (int, bool) { return f.cf.LookupColumn(name) }

// FieldByIndex returns the schema field of column c.
func (f *File) FieldByIndex(c int) Field { return f.cf.FieldByIndex(c) }

// ReadColumn reads a full column by name (live rows only).
func (f *File) ReadColumn(name string) (ColumnData, error) { return f.cf.ReadColumn(name) }

// ReadColumnByIndex reads a full column by index (live rows only).
func (f *File) ReadColumnByIndex(c int) (ColumnData, error) { return f.cf.ReadColumnByIndex(c) }

// ReadRows reads global rows [lo, hi) of column c, touching only the
// overlapping pages.
func (f *File) ReadRows(c int, lo, hi uint64) (ColumnData, error) { return f.cf.ReadRows(c, lo, hi) }

// Project reads the named columns — the §2.3 feature-projection path.
func (f *File) Project(names ...string) (*Batch, error) { return f.cf.Project(names...) }

// Scan starts a streaming scan over the projected columns, decoding
// batches in parallel while preserving file order. See the package
// Quickstart for the iteration loop; Next returns io.EOF at end of scan.
func (f *File) Scan(opts ScanOptions) (*Scanner, error) { return f.cf.Scan(opts) }

// ProjectCoalesced reads the named columns, bundling physically adjacent
// column chunks into single reads of up to core.CoalesceLimit bytes — the
// §2.5 column-reordering + coalesced-read path for hot feature sets.
func (f *File) ProjectCoalesced(names ...string) (*Batch, error) {
	return f.cf.ProjectCoalesced(names...)
}

// ReorderFields moves the named hot columns to the front of the schema so
// their chunks are written adjacent within every row group (§2.5 column
// reordering). The returned permutation reorders batch columns to match.
func ReorderFields(schema *Schema, hot []string) (*Schema, []int, error) {
	return core.ReorderFields(schema, hot)
}

// ReorderBatchColumns applies a ReorderFields permutation to batch columns.
func ReorderBatchColumns(cols []ColumnData, perm []int) []ColumnData {
	return core.ReorderBatchColumns(cols, perm)
}

// ProjectEvolved reads the requested fields, materializing default values
// for fields the file predates — the read side of additive schema
// evolution for feature churn (§1).
func (f *File) ProjectEvolved(fields []Field) (*Batch, error) {
	return f.cf.ProjectEvolved(fields)
}

// VerifyChecksums re-hashes every page against the footer's Merkle tree.
func (f *File) VerifyChecksums() error { return f.cf.VerifyChecksums() }

// FileStats summarizes a file's physical storage per column.
type FileStats = core.FileStats

// ColumnStats summarizes one column's physical storage.
type ColumnStats = core.ColumnStats

// Stats walks the footer (no data reads) and reports per-column storage.
func (f *File) Stats() *FileStats { return f.cf.Stats() }

// PageStats returns the min/max/null zone map of global page p (indices
// run over Stats().NumPages), or ok=false when the writer recorded no
// statistics section. These are the zone maps ScanOptions.Filters prune
// with.
func (f *File) PageStats(p int) (PageStats, bool) { return f.cf.PageStats(p) }

// DeleteRows deletes rows per the file's compliance level. For files
// opened with OpenPath the in-place write goes to the same file; otherwise
// a WriterAt covering the same bytes must be supplied via DeleteRowsTo.
func (f *File) DeleteRows(rows []uint64) error {
	if f.file == nil {
		return fmt.Errorf("bullion: DeleteRows requires OpenPath (use DeleteRowsTo with a WriterAt)")
	}
	return f.cf.DeleteRows(f.file, rows)
}

// DeleteRowsTo deletes rows, writing in-place updates through w (which
// must address the same bytes the file reads).
func (f *File) DeleteRowsTo(w io.WriterAt, rows []uint64) error { return f.cf.DeleteRows(w, rows) }

// Dataset types re-exported from the dataset layer (see "Datasets and
// compaction" above).
type (
	// Dataset is a manifest-backed multi-file table.
	Dataset = dataset.Dataset
	// DatasetOptions configures a Dataset handle (per-file writer options,
	// reader wrapping).
	DatasetOptions = dataset.Options
	// DatasetScanOptions configures Dataset.Scan: the embedded ScanOptions
	// per member engine, plus FileConcurrency and Degraded (skip-and-report
	// unreachable members instead of failing).
	DatasetScanOptions = dataset.ScanOptions
	// DatasetScanner streams batches across member files in manifest order.
	DatasetScanner = dataset.Scanner
	// DatasetScanStats aggregates per-file ScanStats with file-pruning
	// counters, the resilience work done on the scan's behalf
	// (Retries/Hedges/HedgeWins), and any DegradedMembers skipped.
	DatasetScanStats = dataset.ScanStats
	// ShardedWriter routes ingest batches across N new member files.
	ShardedWriter = dataset.ShardedWriter
	// CompactStats reports what a Dataset.Compact call did.
	CompactStats = dataset.CompactStats
	// DatasetManifest is one generation's manifest document.
	DatasetManifest = dataset.Manifest
	// DatasetFileEntry describes one member file in a manifest.
	DatasetFileEntry = dataset.FileEntry
	// FsckReport is the result of auditing a dataset directory.
	FsckReport = dataset.FsckReport
	// FsckMember is one member file's audit record within an FsckReport.
	FsckMember = dataset.FsckMember
	// StorageBackend is the pluggable flat-namespace store dataset I/O
	// runs on (DatasetOptions.Backend; defaults to the local filesystem).
	StorageBackend = storage.Backend
	// StorageFile is an open handle within a StorageBackend.
	StorageFile = storage.File
	// HTTPBackendOptions configures NewHTTPBackend (client override, ETag
	// pinning).
	HTTPBackendOptions = storage.HTTPOptions
	// ResilienceOptions tunes NewResilientBackend: per-op deadlines, retry
	// budget, backoff shape, hedge delay, breaker thresholds. The zero
	// value selects the defaults.
	ResilienceOptions = storage.ResilienceOptions
	// ResilientBackend is a StorageBackend wrapped with the retry, hedging,
	// and circuit-breaker policy (see "Remote datasets and resilience").
	ResilientBackend = storage.Resilient
	// ResilienceStats is a ResilientBackend's cumulative counter snapshot.
	ResilienceStats = storage.ResilienceStats
	// ArtifactCache is the shared immutable-artifact cache serving
	// datasets: parsed footers/blooms, open handles, and page bytes (see
	// "Caching and memory tiering"). Pass one via DatasetOptions.Cache to
	// scope sharing explicitly.
	ArtifactCache = cache.Cache
	// CacheOptions sizes a NewCache instance (footer entries, handle
	// entries, page bytes). Zero fields select the defaults.
	CacheOptions = cache.Options
	// CacheStats is a cache-wide counter snapshot (Dataset.CacheStats).
	CacheStats = cache.Stats
	// DatasetCacheScanStats is the per-scan delta of cache activity,
	// reported in DatasetScanStats.Cache.
	DatasetCacheScanStats = dataset.CacheScanStats

	// VacuumReport details a retention-aware Dataset.VacuumWithReport:
	// files removed, generations retained (tagged or pinned), and the
	// files kept on their behalf.
	VacuumReport = dataset.VacuumReport
	// FsckRetained is one retained (tagged) generation's audit record
	// within an FsckReport.
	FsckRetained = dataset.FsckRetained

	// Loader streams a dataset generation as deterministic shuffled
	// epochs (see "Training loaders and time travel").
	Loader = loader.Loader
	// LoaderOptions configures NewLoader: projection, shuffle seed and
	// granule, epochs, batch size, read-ahead, and pacing.
	LoaderOptions = loader.Options
	// LoaderShard is one shuffle granule: global rows [Lo, Hi).
	LoaderShard = loader.Shard
	// LoaderCheckpoint is an exact resume point — the plan identity
	// (generation, seed, sizes) plus the (epoch, shard, batch) cursor.
	// It marshals to JSON for persisting alongside model checkpoints.
	LoaderCheckpoint = loader.Checkpoint
	// LoaderStats snapshots a loader's progress and planning cost.
	LoaderStats = loader.Stats
)

// DefaultLoaderShardRows is the shuffle granule when
// LoaderOptions.ShardRows is 0.
const DefaultLoaderShardRows = loader.DefaultShardRows

// Sentinel errors surfaced by dataset commits.
var (
	// ErrGenerationConflict reports a lost commit race: another handle
	// moved CURRENT first. The losing mutation left no trace; reopen (or
	// re-snapshot) and retry.
	ErrGenerationConflict = dataset.ErrGenerationConflict
	// ErrCommitIndeterminate reports a commit whose CURRENT swap was
	// published but could not be confirmed durable. The data files are
	// left in place; reopen to learn the outcome, Vacuum to reclaim.
	ErrCommitIndeterminate = dataset.ErrCommitIndeterminate
	// ErrBackendReadOnly reports a mutating operation on a read-only
	// backend (a dataset opened from an http(s) URL).
	ErrBackendReadOnly = storage.ErrReadOnly
	// ErrChangedUnderRead reports a remote member whose ETag no longer
	// matches the one pinned at open — the file changed mid-scan.
	ErrChangedUnderRead = storage.ErrChangedUnderRead
	// ErrCircuitOpen reports a read failed fast because the resilience
	// wrapper's circuit breaker is open after consecutive failures.
	ErrCircuitOpen = storage.ErrCircuitOpen
	// ErrSnapshotReadOnly reports a mutation attempted through a handle
	// opened at a pinned generation (OpenDatasetAt).
	ErrSnapshotReadOnly = dataset.ErrSnapshotReadOnly
	// ErrNoSuchTag reports a tag or generation reference the dataset does
	// not know.
	ErrNoSuchTag = dataset.ErrNoSuchTag
)

// CreateDataset initializes a new dataset directory with an empty
// manifest (generation 1). The directory must not already hold a dataset.
func CreateDataset(dir string, schema *Schema, opts *DatasetOptions) (*Dataset, error) {
	return dataset.Create(dir, schema, opts)
}

// OpenDataset opens the dataset at dir at its current manifest generation.
func OpenDataset(dir string, opts *DatasetOptions) (*Dataset, error) {
	return dataset.Open(dir, opts)
}

// OpenDatasetAt opens a read-only handle pinned to the generation ref
// names: a tag created with Dataset.Tag, or (when ref is all digits) a
// numeric generation. The pinned generation's files are protected from
// Vacuum by handles in this process for as long as the handle is open;
// tagged generations are protected across processes by the tag itself.
// Mutations through the handle fail with ErrSnapshotReadOnly.
func OpenDatasetAt(dir, ref string, opts *DatasetOptions) (*Dataset, error) {
	return dataset.OpenAt(dir, ref, opts)
}

// NewLoader plans a deterministic shuffled epoch stream over ds's
// current generation — manifest row counts only, zero data reads (see
// "Training loaders and time travel"). Open ds via OpenDatasetAt when
// commits may land while the loader runs.
func NewLoader(ds *Dataset, opts LoaderOptions) (*Loader, error) {
	return loader.New(ds, opts)
}

// ResumeLoader continues the exact batch stream a LoaderCheckpoint was
// captured from, mid-shard. ds must be opened at the checkpoint's
// generation (OpenDatasetAt); the checkpoint's identity fields override
// the corresponding opts.
func ResumeLoader(ds *Dataset, ck LoaderCheckpoint, opts LoaderOptions) (*Loader, error) {
	return loader.Resume(ds, ck, opts)
}

// FsckDataset audits the dataset at dir without mutating it: manifest
// integrity, per-member sizes/fingerprints/row counts, live-row drift
// from crashed deletes, and orphaned temporaries or unreferenced files.
// With deep set, every member's Merkle checksum tree is verified too.
func FsckDataset(dir string, opts *DatasetOptions, deep bool) (*FsckReport, error) {
	return dataset.Fsck(dir, opts, deep)
}

// NewLocalBackend returns a StorageBackend rooted at the directory dir
// (created if absent) — the backend OpenDataset uses by default, exposed
// for wrapping with instrumentation or fault injection.
func NewLocalBackend(dir string) (StorageBackend, error) { return storage.NewLocal(dir) }

// NewHTTPBackend returns a read-only StorageBackend over the dataset
// published at baseURL via HTTP range reads with ETag pinning (see
// "Remote datasets and resilience"). OpenDataset calls this implicitly —
// wrapped in NewResilientBackend — for http(s) URLs; construct it
// directly to customize the client or the resilience policy.
func NewHTTPBackend(baseURL string, opts *HTTPBackendOptions) (StorageBackend, error) {
	return storage.NewHTTP(baseURL, opts)
}

// NewResilientBackend wraps any StorageBackend with the retry, hedged-
// read, and circuit-breaker policy. A nil opts selects the defaults.
func NewResilientBackend(b StorageBackend, opts *ResilienceOptions) *ResilientBackend {
	return storage.NewResilient(b, opts)
}

// NewCache builds a private ArtifactCache for DatasetOptions.Cache —
// isolation from the process-wide shared cache, or bespoke sizing.
func NewCache(opts CacheOptions) *ArtifactCache { return cache.New(opts) }

// SharedCache returns the process-wide ArtifactCache that datasets use
// by default (see "Caching and memory tiering").
func SharedCache() *ArtifactCache { return cache.Shared() }

// DatasetHTTPHandler serves a StorageBackend's files over GET/HEAD with
// byte-range and If-Match support — the reference server side for
// NewHTTPBackend, used by the examples and integration tests to publish
// a local dataset directory.
func DatasetHTTPHandler(b StorageBackend) http.Handler { return storage.NewHTTPHandler(b) }

// Quantize converts float32 values to a Figure 6 format's bit patterns
// (widened for the integer cascade).
func Quantize(vs []float32, f QuantFormat) ([]int64, error) { return quant.Quantize(vs, f) }

// Dequantize expands bit patterns back to float32.
func Dequantize(bits []int64, f QuantFormat) ([]float32, error) { return quant.Dequantize(bits, f) }

// SplitBF16Columns decomposes an FP32 column into a bfloat16-truncated
// primary column and a 16-bit residual column; JoinBF16Columns
// reconstructs the original bits exactly (§2.4's dual-column strategy).
func SplitBF16Columns(vs []float32) (hi, lo []int64) { return quant.SplitBF16Columns(vs) }

// JoinBF16Columns reconstructs the FP32 column from its two halves.
func JoinBF16Columns(hi, lo []int64) []float32 { return quant.JoinBF16Columns(hi, lo) }

// EncodeNormalizedEmbedding quantizes float32 embedding components to BF16
// and packs them with the 12-bit normalized layout (§2.4's BF16-specific
// encoding opportunity for vectors normalized to (-1,1)).
func EncodeNormalizedEmbedding(vs []float32) []byte {
	return quant.EncodeNormalizedEmbedding(vs)
}

// DecodeNormalizedEmbedding reverses EncodeNormalizedEmbedding (lossless
// with respect to BF16).
func DecodeNormalizedEmbedding(data []byte) ([]float32, error) {
	return quant.DecodeNormalizedEmbedding(data)
}
