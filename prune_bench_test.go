package bullion

// Pruning benchmarks (recorded in the "pruning" section of
// BENCH_scan.json): what the statistics system saves on selective scans.
//
//   - BenchmarkScanPrunedFloat: one file, float64 key increasing with the
//     row id, a float range filter covering ~1/16 of the value space —
//     page zone maps prune the batches outside the band before any I/O.
//     BenchmarkScanUnprunedFloat is the same scan without the filter.
//   - BenchmarkDatasetScanBloom: an 8-member dataset where every member
//     has a disjoint tag universe and a disjoint float band, scanned with
//     a string-membership filter matching one member — the manifest's
//     per-member blooms prune 7 of 8 files without opening them.
//     BenchmarkDatasetScanFloatZone does the same through float zones.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"
)

const (
	pruneBenchRows  = 1 << 15 // single-file benchmark rows
	pruneBenchFiles = 8
	pruneBenchPerF  = 4096 // rows per dataset member
)

var pruneBench struct {
	once sync.Once
	mf   *memReaderAt
}

type memReaderAt struct{ data []byte }

func (m *memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// pruneBenchFile writes the single-file table once: a float64 key
// increasing with the row id (so page zone maps are maximally selective)
// plus an int payload column.
func pruneBenchFile(b *testing.B) *File {
	b.Helper()
	pruneBench.once.Do(func() {
		schema, err := NewSchema(
			Field{Name: "fkey", Type: Type{Kind: Float64}},
			Field{Name: "payload", Type: Type{Kind: Int64}},
		)
		if err != nil {
			panic(err)
		}
		fkey := make(Float64Data, pruneBenchRows)
		payload := make(Int64Data, pruneBenchRows)
		for i := range fkey {
			fkey[i] = float64(i) / 3
			payload[i] = int64(i) * 7
		}
		batch, err := NewBatch(schema, []ColumnData{fkey, payload})
		if err != nil {
			panic(err)
		}
		var buf writerBuffer
		opts := DefaultOptions()
		opts.GroupRows = 8192
		opts.Compliance = Level1
		w, err := NewWriter(&buf, schema, opts)
		if err != nil {
			panic(err)
		}
		if err := w.Write(batch); err != nil {
			panic(err)
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		pruneBench.mf = &memReaderAt{data: buf.data}
	})
	f, err := Open(pruneBench.mf, int64(len(pruneBench.mf.data)))
	if err != nil {
		b.Fatal(err)
	}
	return f
}

type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// benchScanFloat drives one scan per iteration, optionally filtered to a
// narrow float band, and reports pruning effectiveness.
func benchScanFloat(b *testing.B, filtered bool) {
	f := pruneBenchFile(b)
	var filters []ColumnFilter
	lo, hi := 1000.0, 1600.0
	if filtered {
		filters = []ColumnFilter{{Column: "fkey", FloatMin: &lo, FloatMax: &hi}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var skipped, emitted, rows int64
	for i := 0; i < b.N; i++ {
		sc, err := f.Scan(ScanOptions{BatchRows: 1024, Workers: 1, Filters: filters, ReuseBatches: true})
		if err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += int64(batch.NumRows())
			sc.Recycle(batch)
		}
		st := sc.Stats()
		skipped += st.BatchesSkipped
		emitted += st.BatchesEmitted
		sc.Close()
	}
	if filtered && skipped == 0 {
		b.Fatal("float filter pruned nothing")
	}
	b.ReportMetric(float64(skipped)/float64(b.N), "batchesskipped/op")
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/sec")
}

func BenchmarkScanPrunedFloat(b *testing.B)   { benchScanFloat(b, true) }
func BenchmarkScanUnprunedFloat(b *testing.B) { benchScanFloat(b, false) }

var bloomBench struct {
	once sync.Once
	dir  string
	blob *Dataset
}

// bloomBenchDataset builds the disjoint-member dataset once: member i
// holds tags "m<i>-<k>" and float values in [i*1000, i*1000+1000).
func bloomBenchDataset(b *testing.B) *Dataset {
	b.Helper()
	bloomBench.once.Do(func() {
		dir, err := os.MkdirTemp("", "bullion-bloombench")
		if err != nil {
			panic(err)
		}
		bloomBench.dir = dir
		schema, err := NewSchema(
			Field{Name: "tag", Type: Type{Kind: String}},
			Field{Name: "fval", Type: Type{Kind: Float64}},
		)
		if err != nil {
			panic(err)
		}
		opts := DefaultOptions()
		opts.GroupRows = pruneBenchPerF
		opts.Compliance = Level1
		ds, err := CreateDataset(dir, schema, &DatasetOptions{Writer: opts})
		if err != nil {
			panic(err)
		}
		for i := 0; i < pruneBenchFiles; i++ {
			tags := make(BytesData, pruneBenchPerF)
			fv := make(Float64Data, pruneBenchPerF)
			for r := range tags {
				tags[r] = []byte(fmt.Sprintf("m%d-%d", i, r%64))
				fv[r] = float64(i*1000) + float64(r)/8
			}
			batch, err := NewBatch(schema, []ColumnData{tags, fv})
			if err != nil {
				panic(err)
			}
			if err := ds.Append(batch); err != nil {
				panic(err)
			}
		}
		ds.Close()
		bloomBench.blob, err = OpenDataset(dir, &DatasetOptions{
			WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
				return &latencyReaderAt{r: r, d: time.Millisecond}
			},
		})
		if err != nil {
			panic(err)
		}
	})
	return bloomBench.blob
}

// benchDatasetPruned scans the disjoint-member dataset behind 1 ms
// storage latency with a filter that only member 5 can satisfy; the
// manifest must prune the other 7 files before they are opened, so each
// iteration pays for one member's reads only.
func benchDatasetPruned(b *testing.B, filters []ColumnFilter) {
	ds := bloomBenchDataset(b)
	opts := DatasetScanOptions{
		ScanOptions: ScanOptions{
			BatchRows:    pruneBenchPerF,
			Workers:      1,
			Filters:      filters,
			ReuseBatches: true,
		},
		FileConcurrency: 8,
	}
	warm, err := ds.Scan(opts) // member footer opens, outside the timing
	if err != nil {
		b.Fatal(err)
	}
	warm.Close()

	b.ReportAllocs()
	b.ResetTimer()
	var pruned, readOps, rows int64
	for i := 0; i < b.N; i++ {
		sc, err := ds.Scan(opts)
		if err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += int64(batch.NumRows())
			sc.Recycle(batch)
		}
		st := sc.Stats()
		pruned += int64(st.FilesPruned)
		readOps += st.ReadOps
		sc.Close()
	}
	if got := pruned / int64(b.N); got != pruneBenchFiles-1 {
		b.Fatalf("pruned %d files/op, want %d", got, pruneBenchFiles-1)
	}
	b.ReportMetric(float64(pruned)/float64(b.N), "filespruned/op")
	b.ReportMetric(float64(readOps)/float64(b.N), "readops/op")
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/sec")
}

func BenchmarkDatasetScanBloom(b *testing.B) {
	benchDatasetPruned(b, []ColumnFilter{{Column: "tag", ValueIn: [][]byte{[]byte("m5-7")}}})
}

func BenchmarkDatasetScanFloatZone(b *testing.B) {
	lo, hi := 5100.0, 5400.0
	benchDatasetPruned(b, []ColumnFilter{{Column: "fval", FloatMin: &lo, FloatMax: &hi}})
}
