// Command experiments regenerates every table and figure from the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig5
//	experiments -exp fig5 -features 1000,5000,10000,20000
//
// Experiments: fig1, fig2, tab1, fig4, fig5, fig6, fig7, tab2, deletion, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bullion/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1|fig2|tab1|fig4|fig5|fig6|fig7|reorder|tab2|deletion|all)")
	features := flag.String("features", "", "comma-separated feature counts for fig5 (default 1000,5000,10000,20000)")
	flag.Parse()

	var featureCounts []int
	if *features != "" {
		for _, s := range strings.Split(*features, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "experiments: bad feature count %q\n", s)
				os.Exit(2)
			}
			featureCounts = append(featureCounts, n)
		}
	}

	var err error
	switch *exp {
	case "fig1":
		err = experiments.Fig1(os.Stdout)
	case "fig2":
		err = experiments.Fig2(os.Stdout)
	case "tab1":
		err = experiments.Tab1(os.Stdout)
	case "fig4":
		err = experiments.Fig4(os.Stdout)
	case "fig5":
		err = experiments.Fig5(os.Stdout, featureCounts)
	case "fig6":
		err = experiments.Fig6(os.Stdout)
	case "fig7":
		err = experiments.Fig7(os.Stdout)
	case "reorder":
		err = experiments.Reorder(os.Stdout)
	case "tab2":
		err = experiments.Tab2(os.Stdout)
	case "deletion":
		err = experiments.Deletion(os.Stdout)
	case "all":
		err = experiments.All(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
