// Command bullion inspects and manipulates Bullion files and datasets.
//
// Usage:
//
//	bullion inspect <file>               print header, schema summary, stats
//	bullion info [-json] <path>...       machine-readable file/dataset stats
//	bullion verify <file>                verify the Merkle checksum tree
//	bullion project <file> <col>...      print the first rows of columns
//	bullion scan [flags] <path>...       stream batches, report per-file + aggregate iostats
//	bullion ingest [flags] <path>...     write synthetic tables, report per-file + aggregate iostats
//	bullion compact [flags] <dir>...     fold deletion-heavy dataset members into fresh files
//	bullion fsck [flags] <dir>...        audit dataset integrity and crash debris
//	bullion tag [flags] <dir> [name]     list, create, or delete snapshot tags
//	bullion epochs [flags] <dir> [col].. stream shuffled training epochs, checkpoint/resume
//	bullion delete <path> <row>...       delete rows (file or dataset)
//	bullion demo <file>                  write a small demo ads file
//
// scan and ingest accept any number of paths; a path that is a directory
// is treated as a dataset (see bullion.OpenDataset). scan, info, and
// fsck also accept http(s):// dataset URLs, read through the resilient
// range-read backend; scan then reports the retry/hedge work and — with
// -degraded — the members it skipped as unreachable. Flags come before
// paths; for scan, positional arguments that do not name an existing path
// are treated as projected column names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bullion"
	"bullion/internal/iostats"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "inspect":
		err = inspect(args[0])
	case "info":
		err = info(args)
	case "verify":
		err = verify(args[0])
	case "project":
		err = project(args[0], args[1:])
	case "scan":
		err = scan(args)
	case "ingest":
		err = ingest(args)
	case "compact":
		err = compact(args)
	case "fsck":
		err = fsck(args)
	case "tag":
		err = tag(args)
	case "epochs":
		err = epochs(args)
	case "delete":
		err = deleteRows(args[0], args[1:])
	case "demo":
		err = demo(args[0])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bullion: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bullion inspect <file>
  bullion info [-json] <file|dir|url>...
  bullion verify <file>
  bullion project <file> <column>...
  bullion scan [-batch N] [-workers N] [-file-workers N] [-coalesce-gap N] [-no-coalesce]
               [-degraded] [-json] [-filter-int col:lo:hi] [-filter-float col:lo:hi]
               [-filter-in col:v1,v2] <file|dir|url>... [column]...
  bullion ingest [-rows N] [-cols N] [-group N] [-workers N] [-shards N] [-no-cache] <file>... | <dir>
  bullion compact [-threshold R] [-vacuum] <dir>...
  bullion fsck [-json] [-deep] [-repair] <dir|url>...
  bullion tag <dir>                       # list tags
  bullion tag <dir> <name> [generation]   # tag a generation (default: current)
  bullion tag -delete <dir> <name>
  bullion epochs [-at tag|gen] [-seed N] [-epochs N] [-shard-rows N] [-batch N]
                 [-consumers N] [-rate ROWS/S] [-max-batches N]
                 [-checkpoint FILE] [-resume FILE] <dir> [column]...
  bullion delete <file|dir> <row>...
  bullion demo <file>`)
	os.Exit(2)
}

// isDir reports whether path exists and is a directory (a dataset).
func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// isRemote reports whether path is an http(s) dataset URL.
func isRemote(path string) bool {
	return strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://")
}

// isDataset reports whether path should open via OpenDataset: a local
// directory or a remote dataset URL.
func isDataset(path string) bool { return isRemote(path) || isDir(path) }

func inspect(path string) error {
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("rows:        %d (%d live)\n", f.NumRows(), f.NumLiveRows())
	fmt.Printf("columns:     %d\n", f.NumColumns())
	fmt.Printf("compliance:  level %d\n", f.Compliance())
	schema := f.Schema()
	byType := map[string]int{}
	for _, fd := range schema.Fields {
		k := fd.Type.String()
		if fd.Sparse {
			k += " (sparse)"
		}
		byType[k]++
	}
	fmt.Println("type breakdown:")
	for k, n := range byType {
		fmt.Printf("  %-30s %6d\n", k, n)
	}
	stats := f.Stats()
	fmt.Printf("data bytes:  %d (footer %d)\n", stats.DataBytes, stats.FooterBytes)
	fmt.Println("largest columns:")
	for _, c := range stats.TopColumnsBySize(5) {
		fmt.Printf("  %-30s %10d bytes  %4d pages\n", c.Name, c.CompressedBytes, c.Pages)
	}
	fmt.Println("page encodings:")
	for id, n := range stats.EncodingHistogram() {
		name := id.String()
		if uint8(id) == 0 {
			name = "SparseDelta" // composite sliding-window pages
		}
		fmt.Printf("  %-20s %6d pages\n", name, n)
	}
	return nil
}

// ---- info: machine-readable stats ----

// columnInfo is the per-column record `bullion info -json` emits — the
// same stats the dataset manifest builder lifts from footers, so external
// tooling can consume them without parsing human text.
type columnInfo struct {
	Name            string         `json:"name"`
	Type            string         `json:"type"`
	Sparse          bool           `json:"sparse,omitempty"`
	Nullable        bool           `json:"nullable,omitempty"`
	CompressedBytes uint64         `json:"compressed_bytes"`
	Pages           int            `json:"pages"`
	Encodings       map[string]int `json:"encodings"`
	HasMinMax       bool           `json:"has_min_max"`
	Min             *int64         `json:"min,omitempty"`
	Max             *int64         `json:"max,omitempty"`
	HasFloatMinMax  bool           `json:"has_float_min_max,omitempty"`
	FloatMin        *float64       `json:"float_min,omitempty"`
	FloatMax        *float64       `json:"float_max,omitempty"`
	// BloomBytes is the size of the column's file-level membership filter
	// (0 = none recorded).
	BloomBytes int    `json:"bloom_bytes,omitempty"`
	NullCount  uint64 `json:"null_count,omitempty"`
}

type fileInfo struct {
	Path        string       `json:"path"`
	FileBytes   int64        `json:"file_bytes"`
	DataBytes   uint64       `json:"data_bytes"`
	FooterBytes int          `json:"footer_bytes"`
	Rows        uint64       `json:"rows"`
	LiveRows    uint64       `json:"live_rows"`
	Groups      int          `json:"groups"`
	Pages       int          `json:"pages"`
	Compliance  int          `json:"compliance"`
	Columns     []columnInfo `json:"columns"`
}

type datasetInfo struct {
	Path       string                     `json:"path"`
	Generation uint64                     `json:"generation"`
	SchemaFP   string                     `json:"schema_fingerprint"`
	Rows       uint64                     `json:"rows"`
	LiveRows   uint64                     `json:"live_rows"`
	TotalBytes int64                      `json:"total_bytes"`
	Files      []bullion.DatasetFileEntry `json:"files"`
}

func fileInfoFor(path string) (*fileInfo, error) {
	f, err := bullion.OpenPath(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st := f.Stats()
	out := &fileInfo{
		Path:        path,
		FileBytes:   st.FileBytes,
		DataBytes:   st.DataBytes,
		FooterBytes: st.FooterBytes,
		Rows:        st.NumRows,
		LiveRows:    st.LiveRows,
		Groups:      st.NumGroups,
		Pages:       st.NumPages,
		Compliance:  int(st.Compliance),
	}
	for _, c := range st.Columns {
		ci := columnInfo{
			Name:            c.Name,
			Type:            c.Type.String(),
			Sparse:          c.Sparse,
			Nullable:        c.Nullable,
			CompressedBytes: c.CompressedBytes,
			Pages:           c.Pages,
			Encodings:       map[string]int{},
			HasMinMax:       c.HasMinMax,
			NullCount:       c.NullCount,
		}
		for id, n := range c.Encodings {
			name := id.String()
			if uint8(id) == 0 {
				name = "SparseDelta"
			}
			ci.Encodings[name] = n
		}
		if c.HasMinMax {
			mn, mx := c.Min, c.Max
			ci.Min, ci.Max = &mn, &mx
		}
		if c.HasFloatMinMax {
			ci.HasFloatMinMax = true
			// JSON cannot encode ±Inf; bounds are only emitted when finite.
			if fn, fx := c.FloatMin, c.FloatMax; !math.IsInf(fn, 0) && !math.IsInf(fx, 0) {
				ci.FloatMin, ci.FloatMax = &fn, &fx
			}
		}
		ci.BloomBytes = len(c.Bloom)
		out.Columns = append(out.Columns, ci)
	}
	return out, nil
}

func datasetInfoFor(path string) (*datasetInfo, error) {
	ds, err := bullion.OpenDataset(path, nil)
	if err != nil {
		return nil, err
	}
	defer ds.Close()
	m := ds.Manifest()
	return &datasetInfo{
		Path:       path,
		Generation: m.Generation,
		SchemaFP:   m.SchemaFP,
		Rows:       ds.NumRows(),
		LiveRows:   ds.NumLiveRows(),
		TotalBytes: ds.TotalBytes(),
		Files:      m.Files,
	}, nil
}

// info prints per-path stats; with -json it emits one JSON document (a
// list when more than one path is given).
func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("info: no paths given")
	}
	var docs []any
	for _, p := range paths {
		if isDataset(p) {
			di, err := datasetInfoFor(p)
			if err != nil {
				return err
			}
			docs = append(docs, di)
			continue
		}
		fi, err := fileInfoFor(p)
		if err != nil {
			return err
		}
		docs = append(docs, fi)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(docs) == 1 {
			return enc.Encode(docs[0])
		}
		return enc.Encode(docs)
	}
	for _, doc := range docs {
		switch d := doc.(type) {
		case *datasetInfo:
			fmt.Printf("%s: dataset generation %d, %d files, %d rows (%d live), %d bytes\n",
				d.Path, d.Generation, len(d.Files), d.Rows, d.LiveRows, d.TotalBytes)
			for _, e := range d.Files {
				fmt.Printf("  %-28s %10d rows %10d live %12d bytes\n", e.Name, e.Rows, e.LiveRows, e.Bytes)
			}
		case *fileInfo:
			fmt.Printf("%s: %d rows (%d live), %d columns, %d groups, %d pages, level %d\n",
				d.Path, d.Rows, d.LiveRows, len(d.Columns), d.Groups, d.Pages, d.Compliance)
			for _, c := range d.Columns {
				zone := "no zone map"
				switch {
				case c.HasMinMax:
					zone = fmt.Sprintf("min %d max %d", *c.Min, *c.Max)
				case c.HasFloatMinMax && c.FloatMin != nil:
					zone = fmt.Sprintf("min %g max %g", *c.FloatMin, *c.FloatMax)
				case c.HasFloatMinMax:
					zone = "float bounds (non-finite)"
				}
				if c.BloomBytes > 0 {
					zone += fmt.Sprintf(", bloom %dB", c.BloomBytes)
				}
				fmt.Printf("  %-28s %-16s %10d bytes %5d pages  %s\n",
					c.Name, c.Type, c.CompressedBytes, c.Pages, zone)
			}
		}
	}
	return nil
}

func verify(path string) error {
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.VerifyChecksums(); err != nil {
		return err
	}
	fmt.Println("checksums OK")
	return nil
}

func project(path string, cols []string) error {
	if len(cols) == 0 {
		return fmt.Errorf("project: no columns given")
	}
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	batch, err := f.Project(cols...)
	if err != nil {
		return err
	}
	n := batch.NumRows()
	if n > 10 {
		n = 10
	}
	for r := 0; r < n; r++ {
		for c, col := range batch.Columns {
			fmt.Printf("%s=%v ", cols[c], cellString(col, r))
		}
		fmt.Println()
	}
	return nil
}

func cellString(col bullion.ColumnData, r int) string {
	switch d := col.(type) {
	case bullion.Int64Data:
		return fmt.Sprint(d[r])
	case bullion.Float64Data:
		return fmt.Sprintf("%.4f", d[r])
	case bullion.Float32Data:
		return fmt.Sprintf("%.4f", d[r])
	case bullion.BoolData:
		return fmt.Sprint(d[r])
	case bullion.BytesData:
		return string(d[r])
	case bullion.ListInt64Data:
		if len(d[r]) > 6 {
			return fmt.Sprintf("%v... (%d)", d[r][:6], len(d[r]))
		}
		return fmt.Sprint(d[r])
	default:
		return fmt.Sprintf("%T", col)
	}
}

// repeatedFlag collects every occurrence of a repeatable flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string { return strings.Join(*r, ",") }
func (r *repeatedFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// parseFilters turns the scan command's filter flags into ColumnFilters:
//
//	-filter-int   col:lo:hi   int64 range (empty lo/hi = open bound)
//	-filter-float col:lo:hi   float64 range (empty lo/hi = open bound)
//	-filter-in    col:v1,v2   byte-string membership
func parseFilters(ints, floats, ins repeatedFlag) ([]bullion.ColumnFilter, error) {
	var out []bullion.ColumnFilter
	for _, spec := range ints {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad -filter-int %q (want col:lo:hi)", spec)
		}
		cf := bullion.ColumnFilter{Column: parts[0]}
		if parts[1] != "" {
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -filter-int %q: %v", spec, err)
			}
			cf.Min = &v
		}
		if parts[2] != "" {
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -filter-int %q: %v", spec, err)
			}
			cf.Max = &v
		}
		out = append(out, cf)
	}
	for _, spec := range floats {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad -filter-float %q (want col:lo:hi)", spec)
		}
		cf := bullion.ColumnFilter{Column: parts[0]}
		if parts[1] != "" {
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad -filter-float %q: %v", spec, err)
			}
			cf.FloatMin = &v
		}
		if parts[2] != "" {
			v, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bad -filter-float %q: %v", spec, err)
			}
			cf.FloatMax = &v
		}
		out = append(out, cf)
	}
	for _, spec := range ins {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("bad -filter-in %q (want col:v1,v2,...)", spec)
		}
		cf := bullion.ColumnFilter{Column: parts[0]}
		for _, v := range strings.Split(parts[1], ",") {
			cf.ValueIn = append(cf.ValueIn, []byte(v))
		}
		out = append(out, cf)
	}
	return out, nil
}

// scanResult is one path's scan outcome, for the aggregate report.
// stats is the dataset-level shape for every target: single files report
// themselves as a one-member dataset with no resilience work.
type scanResult struct {
	path    string
	rows    int64
	batches int64
	elapsed time.Duration
	stats   bullion.DatasetScanStats
	phys    iostats.Snapshot
}

// scanJSON is the -json document emitted per scan target.
type scanJSON struct {
	Path      string                        `json:"path"`
	Rows      int64                         `json:"rows"`
	Batches   int64                         `json:"batches"`
	ElapsedMS float64                       `json:"elapsed_ms"`
	Stats     bullion.DatasetScanStats      `json:"stats"`
	Retries   int64                         `json:"retries"`
	Hedges    int64                         `json:"hedges"`
	HedgeWins int64                         `json:"hedge_wins"`
	Degraded  []string                      `json:"degraded_members,omitempty"`
	ReadOps   int64                         `json:"phys_read_ops"`
	ReadBytes int64                         `json:"phys_read_bytes"`
	Cache     bullion.DatasetCacheScanStats `json:"cache"`
}

func toScanJSON(r scanResult) scanJSON {
	return scanJSON{
		Path:      r.path,
		Rows:      r.rows,
		Batches:   r.batches,
		ElapsedMS: float64(r.elapsed.Microseconds()) / 1e3,
		Stats:     r.stats,
		Retries:   r.stats.Retries,
		Hedges:    r.stats.Hedges,
		HedgeWins: r.stats.HedgeWins,
		Degraded:  r.stats.DegradedMembers,
		ReadOps:   r.phys.ReadOps,
		ReadBytes: r.phys.ReadBytes,
		Cache:     r.stats.Cache,
	}
}

// scan streams the projected columns (default: all) of every path —
// single files and dataset directories — and reports per-path and
// aggregate throughput plus physical I/O.
func scan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	batchRows := fs.Int("batch", bullion.DefaultScanBatchRows, "rows per batch")
	workers := fs.Int("workers", 0, "decode workers per file (0 = GOMAXPROCS)")
	fileWorkers := fs.Int("file-workers", 0, "dataset member files streamed concurrently (0 = GOMAXPROCS)")
	coalesceGap := fs.Int("coalesce-gap", 0,
		"cold bytes to read through when merging reads (0 = default, negative = none)")
	noCoalesce := fs.Bool("no-coalesce", false, "one read per column chunk run (pre-planner path)")
	degraded := fs.Bool("degraded", false,
		"skip and report dataset members that stay unreachable after retries instead of failing")
	asJSON := fs.Bool("json", false, "emit one JSON document per path")
	var fInt, fFloat, fIn repeatedFlag
	fs.Var(&fInt, "filter-int", "int zone-map filter col:lo:hi (repeatable; empty bound = open)")
	fs.Var(&fFloat, "filter-float", "float zone-map filter col:lo:hi (repeatable; empty bound = open)")
	fs.Var(&fIn, "filter-in", "membership filter col:v1,v2,... (repeatable; prunes via bloom filters)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	filters, err := parseFilters(fInt, fFloat, fIn)
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	// Positional arguments that name an existing file or directory are
	// scan targets; the rest are projected column names. (The historical
	// CLI silently scanned only the first path.)
	var paths, cols []string
	for _, a := range fs.Args() {
		if _, err := os.Stat(a); err == nil || isRemote(a) {
			paths = append(paths, a)
		} else {
			cols = append(cols, a)
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("scan: no existing paths given")
	}

	opts := bullion.ScanOptions{
		Columns:         cols,
		BatchRows:       *batchRows,
		Workers:         *workers,
		CoalesceGap:     *coalesceGap,
		DisableCoalesce: *noCoalesce,
		ReuseBatches:    true,
		Filters:         filters,
	}
	var results []scanResult
	for _, path := range paths {
		var (
			res scanResult
			err error
		)
		if isDataset(path) {
			res, err = scanDataset(path, opts, *fileWorkers, *degraded, *asJSON)
		} else {
			res, err = scanFile(path, opts)
		}
		if err != nil {
			return fmt.Errorf("scan %s: %w", path, err)
		}
		if !*asJSON {
			printScanResult(res)
		}
		results = append(results, res)
	}
	if len(results) > 1 {
		var agg scanResult
		agg.path = fmt.Sprintf("TOTAL (%d paths)", len(results))
		for _, r := range results {
			agg.rows += r.rows
			agg.batches += r.batches
			agg.elapsed += r.elapsed
			addScanStats(&agg.stats, r.stats)
			agg.phys.ReadOps += r.phys.ReadOps
			agg.phys.ReadBytes += r.phys.ReadBytes
			agg.phys.Seeks += r.phys.Seeks
		}
		if !*asJSON {
			printScanResult(agg)
		}
		results = append(results, agg)
	}
	if *asJSON {
		docs := make([]scanJSON, len(results))
		for i, r := range results {
			docs[i] = toScanJSON(r)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(docs) == 1 {
			return enc.Encode(docs[0])
		}
		return enc.Encode(docs)
	}
	return nil
}

func addScanStats(dst *bullion.DatasetScanStats, src bullion.DatasetScanStats) {
	dst.BytesRead += src.BytesRead
	dst.PagesDecoded += src.PagesDecoded
	dst.PagesSkipped += src.PagesSkipped
	dst.BatchesEmitted += src.BatchesEmitted
	dst.BatchesSkipped += src.BatchesSkipped
	dst.RowsEmitted += src.RowsEmitted
	dst.ReadOps += src.ReadOps
	dst.CoalescedBytes += src.CoalescedBytes
	dst.WastedBytes += src.WastedBytes
	dst.FilesPlanned += src.FilesPlanned
	dst.FilesPruned += src.FilesPruned
	dst.FilesScanned += src.FilesScanned
	dst.Retries += src.Retries
	dst.Hedges += src.Hedges
	dst.HedgeWins += src.HedgeWins
	dst.DegradedMembers = append(dst.DegradedMembers, src.DegradedMembers...)
	dst.Cache.FooterHits += src.Cache.FooterHits
	dst.Cache.FooterMisses += src.Cache.FooterMisses
	dst.Cache.HandleHits += src.Cache.HandleHits
	dst.Cache.HandleMisses += src.Cache.HandleMisses
	dst.Cache.PageHits += src.Cache.PageHits
	dst.Cache.PageMisses += src.Cache.PageMisses
	dst.Cache.PageEvictions += src.Cache.PageEvictions
}

func printScanResult(r scanResult) {
	fmt.Printf("%s: %d rows in %d batches in %v (%.0f rows/sec)\n",
		r.path, r.rows, r.batches, r.elapsed.Round(time.Microsecond),
		float64(r.rows)/r.elapsed.Seconds())
	fmt.Printf("  bytes decoded:  %d (%.1f MB/s)\n", r.stats.BytesRead,
		float64(r.stats.BytesRead)/r.elapsed.Seconds()/1e6)
	fmt.Printf("  physical I/O:   %d reads, %d bytes, %d seeks\n",
		r.phys.ReadOps, r.phys.ReadBytes, r.phys.Seeks)
	fmt.Printf("  coalescing:     %d scan reads, %d coalesced bytes, %d wasted gap bytes\n",
		r.stats.ReadOps, r.stats.CoalescedBytes, r.stats.WastedBytes)
	fmt.Printf("  pages:          %d decoded, %d skipped; batches: %d emitted, %d skipped\n",
		r.stats.PagesDecoded, r.stats.PagesSkipped, r.stats.BatchesEmitted, r.stats.BatchesSkipped)
	if c := r.stats.Cache; c.Any() {
		fmt.Printf("  cache:          footers %d hit/%d miss, handles %d/%d, pages %d/%d (%d evicted)\n",
			c.FooterHits, c.FooterMisses, c.HandleHits, c.HandleMisses,
			c.PageHits, c.PageMisses, c.PageEvictions)
	}
	if r.stats.Retries > 0 || r.stats.Hedges > 0 || len(r.stats.DegradedMembers) > 0 {
		fmt.Printf("  resilience:     %d retries, %d hedges (%d won), %d degraded members\n",
			r.stats.Retries, r.stats.Hedges, r.stats.HedgeWins, len(r.stats.DegradedMembers))
		for _, name := range r.stats.DegradedMembers {
			fmt.Printf("    degraded: %s (unreachable after retries; rows skipped)\n", name)
		}
	}
}

func scanFile(path string, opts bullion.ScanOptions) (scanResult, error) {
	osf, err := os.Open(path)
	if err != nil {
		return scanResult{}, err
	}
	defer osf.Close()
	st, err := osf.Stat()
	if err != nil {
		return scanResult{}, err
	}
	var counters iostats.Counters
	counters.Reset()
	f, err := bullion.Open(&iostats.ReaderAt{R: osf, C: &counters}, st.Size())
	if err != nil {
		return scanResult{}, err
	}
	defer f.Close()

	sc, err := f.Scan(opts)
	if err != nil {
		return scanResult{}, err
	}
	defer sc.Close()

	res := scanResult{path: path}
	start := time.Now()
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return scanResult{}, err
		}
		res.rows += int64(batch.NumRows())
		res.batches++
		sc.Recycle(batch)
	}
	res.elapsed = time.Since(start)
	res.stats = bullion.DatasetScanStats{ScanStats: sc.Stats(), FilesPlanned: 1, FilesScanned: 1}
	res.phys = counters.Snapshot()
	return res, nil
}

func scanDataset(dir string, opts bullion.ScanOptions, fileWorkers int, degraded, quiet bool) (scanResult, error) {
	// One iostats counter per member file, so pruning is visible in the
	// per-file physical I/O (pruned members never appear at all).
	var mu sync.Mutex
	perFile := map[string]*iostats.Counters{}
	ds, err := bullion.OpenDataset(dir, &bullion.DatasetOptions{
		WrapReader: func(name string, r io.ReaderAt, size int64) io.ReaderAt {
			c := &iostats.Counters{}
			c.Reset()
			mu.Lock()
			perFile[name] = c
			mu.Unlock()
			return &iostats.ReaderAt{R: r, C: c}
		},
	})
	if err != nil {
		return scanResult{}, err
	}
	defer ds.Close()

	sc, err := ds.Scan(bullion.DatasetScanOptions{
		ScanOptions:     opts,
		FileConcurrency: fileWorkers,
		Degraded:        degraded,
	})
	if err != nil {
		return scanResult{}, err
	}
	defer sc.Close()

	res := scanResult{path: dir}
	start := time.Now()
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return scanResult{}, err
		}
		res.rows += int64(batch.NumRows())
		res.batches++
		sc.Recycle(batch)
	}
	res.elapsed = time.Since(start)
	res.stats = sc.Stats()

	names := make([]string, 0, len(perFile))
	for name := range perFile {
		names = append(names, name)
	}
	sort.Strings(names)
	if !quiet {
		fmt.Printf("%s: %d member files scanned, %d pruned by manifest\n",
			dir, res.stats.FilesScanned, res.stats.FilesPruned)
	}
	for _, name := range names {
		snap := perFile[name].Snapshot()
		if !quiet {
			fmt.Printf("  %-28s %6d reads %12d bytes\n", name, snap.ReadOps, snap.ReadBytes)
		}
		res.phys.ReadOps += snap.ReadOps
		res.phys.ReadBytes += snap.ReadBytes
		res.phys.Seeks += snap.Seeks
	}
	return res, nil
}

// ---- ingest ----

// ingest writes a synthetic widetable-style feature table, either across
// N file paths (round-robin batches, one pipelined writer per file) or —
// with -shards — into a dataset directory via the sharded writer. It
// reports per-file and aggregate throughput plus physical I/O.
func ingest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	rows := fs.Int("rows", 1<<20, "total rows to write")
	cols := fs.Int("cols", 64, "int64 feature columns")
	group := fs.Int("group", 1<<16, "rows per row group")
	workers := fs.Int("workers", 0, "encode workers per file (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "dataset mode: route across N member files of the dataset directory path")
	noCache := fs.Bool("no-cache", false, "disable the cascade selector cache (re-select per page)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("ingest: no paths given")
	}

	fields := make([]bullion.Field, *cols)
	for c := range fields {
		fields[c] = bullion.Field{Name: fmt.Sprintf("feat_%03d", c), Type: bullion.Type{Kind: bullion.Int64}}
	}
	schema, err := bullion.NewSchema(fields...)
	if err != nil {
		return err
	}
	opts := bullion.DefaultOptions()
	opts.GroupRows = *group
	opts.EncodeWorkers = *workers
	if *noCache {
		opts.Enc = bullion.DefaultEncodingOptions()
		opts.Enc.ResampleDrift = -1
	}
	batches, err := syntheticBatches(schema, *rows, *cols)
	if err != nil {
		return err
	}

	if *shards > 0 {
		if len(paths) != 1 {
			return fmt.Errorf("ingest: -shards takes exactly one dataset directory, got %d paths", len(paths))
		}
		return ingestDataset(paths[0], schema, opts, batches, *shards)
	}
	return ingestFiles(paths, schema, opts, batches)
}

// syntheticBatches pre-generates the ingest workload — a mix of
// narrow-range, clustered, and wide values so the cascade has real
// decisions to make — so the timed region measures the writer, not the
// rng.
func syntheticBatches(schema *bullion.Schema, rows, cols int) ([]*bullion.Batch, error) {
	const batchRows = 8192
	rng := rand.New(rand.NewSource(99))
	var out []*bullion.Batch
	for written := 0; written < rows; {
		n := batchRows
		if written+n > rows {
			n = rows - written
		}
		data := make([]bullion.ColumnData, cols)
		for c := range data {
			vals := make(bullion.Int64Data, n)
			switch c % 3 {
			case 0:
				for r := range vals {
					vals[r] = rng.Int63n(1 << 10)
				}
			case 1:
				for r := range vals {
					vals[r] = int64(written+r) / 8
				}
			default:
				for r := range vals {
					vals[r] = rng.Int63n(1 << 40)
				}
			}
			data[c] = vals
		}
		batch, err := bullion.NewBatch(schema, data)
		if err != nil {
			return nil, err
		}
		out = append(out, batch)
		written += n
	}
	return out, nil
}

// ingestFiles writes the batches round-robin across one pipelined writer
// per path.
func ingestFiles(paths []string, schema *bullion.Schema, opts *bullion.Options, batches []*bullion.Batch) error {
	type target struct {
		path     string
		osf      *os.File
		counters iostats.Counters
		w        *bullion.Writer
		rows     int64
	}
	targets := make([]*target, len(paths))
	for i, path := range paths {
		osf, err := os.Create(path)
		if err != nil {
			return err
		}
		defer osf.Close()
		tg := &target{path: path, osf: osf}
		tg.counters.Reset()
		w, err := bullion.NewWriter(&iostats.Writer{W: osf, C: &tg.counters}, schema, opts)
		if err != nil {
			return err
		}
		tg.w = w
		targets[i] = tg
	}

	start := time.Now()
	var total int64
	for i, batch := range batches {
		tg := targets[i%len(targets)]
		if err := tg.w.Write(batch); err != nil {
			return err
		}
		tg.rows += int64(batch.NumRows())
		total += int64(batch.NumRows())
	}
	var hits, resamples int64
	for _, tg := range targets {
		if err := tg.w.Close(); err != nil {
			return err
		}
		h, r := tg.w.SelectorStats()
		hits += h
		resamples += r
	}
	elapsed := time.Since(start)

	var aggOps, aggBytes int64
	for _, tg := range targets {
		snap := tg.counters.Snapshot()
		fmt.Printf("%s: %d rows, %d writes, %d bytes\n", tg.path, tg.rows, snap.WriteOps, snap.WriteBytes)
		aggOps += snap.WriteOps
		aggBytes += snap.WriteBytes
	}
	fmt.Printf("ingested %d rows across %d files in %v\n", total, len(targets), elapsed.Round(time.Microsecond))
	fmt.Printf("throughput:     %.0f rows/sec (%.1f MB/s encoded)\n",
		float64(total)/elapsed.Seconds(), float64(aggBytes)/elapsed.Seconds()/1e6)
	fmt.Printf("physical I/O:   %d writes, %d bytes\n", aggOps, aggBytes)
	printSelector(hits, resamples)
	return nil
}

// ingestDataset routes the batches across a dataset's sharded writer.
func ingestDataset(dir string, schema *bullion.Schema, opts *bullion.Options, batches []*bullion.Batch, shards int) error {
	ds, err := bullion.OpenDataset(dir, &bullion.DatasetOptions{Writer: opts})
	if err != nil {
		ds2, cerr := bullion.CreateDataset(dir, schema, &bullion.DatasetOptions{Writer: opts})
		if cerr != nil {
			return fmt.Errorf("open: %v; create: %w", err, cerr)
		}
		ds = ds2
	}
	defer ds.Close()
	if ds.Schema().Fingerprint() != schema.Fingerprint() {
		return fmt.Errorf("ingest: dataset %s has a different schema (fingerprint %s)", dir, ds.Schema().Fingerprint())
	}

	sw, err := ds.ShardedWriter(shards)
	if err != nil {
		return err
	}
	start := time.Now()
	var total int64
	for _, batch := range batches {
		if err := sw.Write(batch); err != nil {
			return err
		}
		total += int64(batch.NumRows())
	}
	if err := sw.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	m := ds.Manifest()
	for _, e := range m.Files[len(m.Files)-minInt(shards, len(m.Files)):] {
		fmt.Printf("%s/%s: %d rows, %d bytes\n", dir, e.Name, e.Rows, e.Bytes)
	}
	fmt.Printf("ingested %d rows across %d shards (generation %d) in %v\n",
		total, shards, m.Generation, elapsed.Round(time.Microsecond))
	fmt.Printf("throughput:     %.0f rows/sec\n", float64(total)/elapsed.Seconds())
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func printSelector(hits, resamples int64) {
	fmt.Printf("selector cache: %d reused, %d sampled", hits, resamples)
	if total := hits + resamples; total > 0 {
		fmt.Printf(" (%.1f%% amortized)", 100*float64(hits)/float64(total))
	}
	fmt.Println()
}

// compact folds deletion-heavy members of each dataset into fresh files.
func compact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.5, "compact members with live-row ratio below this")
	vacuum := fs.Bool("vacuum", false, "remove superseded files after compacting (unsafe with concurrent readers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		return fmt.Errorf("compact: no dataset directories given")
	}
	for _, dir := range dirs {
		ds, err := bullion.OpenDataset(dir, nil)
		if err != nil {
			return err
		}
		stats, err := ds.Compact(*threshold)
		if err != nil {
			ds.Close()
			return err
		}
		fmt.Printf("%s: %d files compacted, %d dropped, %d deleted rows reclaimed, %d -> %d bytes (generation %d)\n",
			dir, stats.FilesCompacted, stats.FilesDropped, stats.RowsReclaimed,
			stats.BytesBefore, stats.BytesAfter, ds.Generation())
		if *vacuum {
			removed, err := ds.Vacuum()
			if err != nil {
				ds.Close()
				return err
			}
			fmt.Printf("  vacuumed %d files\n", len(removed))
		}
		ds.Close()
	}
	return nil
}

// fsck audits each dataset directory — manifest integrity, member
// sizes/fingerprints/row counts, live-row drift from crashed deletes,
// and orphaned crash debris — without mutating it. With -repair it first
// reopens the dataset (sweeping temporary debris) and vacuums
// unreferenced files, then audits the result. Exits non-zero if any
// directory fails its audit.
func fsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit JSON reports")
	deep := fs.Bool("deep", false, "verify every member's Merkle checksum tree")
	repair := fs.Bool("repair", false, "sweep temporary debris and vacuum unreferenced files first (unsafe with concurrent readers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		return fmt.Errorf("fsck: no dataset directories given")
	}
	var reports []*bullion.FsckReport
	bad := 0
	for _, dir := range dirs {
		if *repair {
			if isRemote(dir) {
				return fmt.Errorf("fsck: -repair requires a local dataset, %s is remote (read-only)", dir)
			}
			ds, err := bullion.OpenDataset(dir, nil) // Open sweeps *.tmp debris
			if err != nil {
				return fmt.Errorf("fsck: repair %s: %w", dir, err)
			}
			removed, err := ds.Vacuum()
			ds.Close()
			if err != nil {
				return fmt.Errorf("fsck: vacuum %s: %w", dir, err)
			}
			if !*asJSON && len(removed) > 0 {
				fmt.Printf("%s: repair reclaimed %d files\n", dir, len(removed))
			}
		}
		rep, err := bullion.FsckDataset(dir, nil, *deep)
		if err != nil {
			return fmt.Errorf("fsck %s: %w", dir, err)
		}
		reports = append(reports, rep)
		if !rep.OK() {
			bad++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(reports) == 1 {
			if err := enc.Encode(reports[0]); err != nil {
				return err
			}
		} else if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, rep := range reports {
			printFsckReport(rep)
		}
	}
	if bad > 0 {
		return fmt.Errorf("fsck: %d of %d datasets failed", bad, len(reports))
	}
	return nil
}

func printFsckReport(rep *bullion.FsckReport) {
	status := "OK"
	if !rep.OK() {
		status = "CORRUPT"
	}
	fmt.Printf("%s: %s — generation %d, %d files, %d rows (%d live)\n",
		rep.Dir, status, rep.Generation, rep.Files, rep.Rows, rep.LiveRows)
	for _, m := range rep.Members {
		if len(m.Errors) == 0 {
			continue
		}
		for _, e := range m.Errors {
			fmt.Printf("  member %s: ERROR %s\n", m.Name, e)
		}
	}
	for _, e := range rep.Errors {
		fmt.Printf("  ERROR %s\n", e)
	}
	for _, w := range rep.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
	if n := len(rep.OrphanTmps); n > 0 {
		fmt.Printf("  %d temporary files from interrupted operations (swept on next open)\n", n)
	}
	if n := len(rep.OrphanParts); n > 0 {
		fmt.Printf("  %d unreferenced part files (reclaimable via vacuum)\n", n)
	}
	if n := len(rep.OrphanManifests); n > 0 {
		fmt.Printf("  %d superseded manifests (reclaimable via vacuum)\n", n)
	}
	for _, rg := range rep.Retained {
		fmt.Printf("  retained generation %d (tags %s): %d files, %d rows\n",
			rg.Generation, strings.Join(rg.Tags, ","), rg.Files, rg.Rows)
		for _, m := range rg.Missing {
			fmt.Printf("    MISSING %s\n", m)
		}
	}
}

// tag lists, creates, or deletes a dataset's snapshot tags. Creating a
// tag is an ordinary manifest commit; tagged generations are retained by
// Vacuum until untagged.
func tag(args []string) error {
	fs := flag.NewFlagSet("tag", flag.ExitOnError)
	del := fs.Bool("delete", false, "delete the named tag instead of creating it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("tag: no dataset directory given")
	}
	ds, err := bullion.OpenDataset(rest[0], nil)
	if err != nil {
		return err
	}
	defer ds.Close()

	switch {
	case len(rest) == 1: // list
		if *del {
			return fmt.Errorf("tag: -delete needs a tag name")
		}
		tags := ds.Tags()
		names := make([]string, 0, len(tags))
		for name := range tags {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-32s generation %d\n", name, tags[name])
		}
		if len(names) == 0 {
			fmt.Printf("%s: no tags (current generation %d)\n", rest[0], ds.Generation())
		}
		return nil
	case *del:
		if len(rest) != 2 {
			return fmt.Errorf("tag: -delete takes <dir> <name>")
		}
		if err := ds.Untag(rest[1]); err != nil {
			return err
		}
		fmt.Printf("deleted tag %s (generation %d); vacuum reclaims the files\n", rest[1], ds.Generation())
		return nil
	default:
		var gen uint64
		if len(rest) == 3 {
			if gen, err = strconv.ParseUint(rest[2], 10, 64); err != nil {
				return fmt.Errorf("tag: bad generation %q", rest[2])
			}
		} else if len(rest) != 2 {
			return fmt.Errorf("tag: want <dir> <name> [generation]")
		}
		if err := ds.Tag(rest[1], gen); err != nil {
			return err
		}
		fmt.Printf("tagged %s -> generation %d (commit %d)\n", rest[1], ds.Tags()[rest[1]], ds.Generation())
		return nil
	}
}

// epochs streams shuffled training epochs over a dataset (or a tagged
// snapshot of one), optionally checkpointing the cursor to a file and
// resuming from one — the CLI face of the training loader.
func epochs(args []string) error {
	fs := flag.NewFlagSet("epochs", flag.ExitOnError)
	at := fs.String("at", "", "open this tag or generation instead of the live dataset")
	seed := fs.Int64("seed", 0, "shuffle seed")
	nEpochs := fs.Int("epochs", 1, "passes over the dataset")
	shardRows := fs.Int("shard-rows", 0, "shuffle granule in rows (0 = default)")
	batchRows := fs.Int("batch", 0, "rows per emitted batch (0 = scanner default)")
	consumers := fs.Int("consumers", 1, "parallel consumers fed via Feed")
	rate := fs.Float64("rate", 0, "target feed rate in rows/sec (0 = unpaced)")
	maxBatches := fs.Int("max-batches", 0, "stop after N batches (0 = stream to the end)")
	ckPath := fs.String("checkpoint", "", "write the final cursor to this JSON file")
	resume := fs.String("resume", "", "resume from a checkpoint JSON file written by -checkpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("epochs: no dataset directory given")
	}
	dir, cols := rest[0], rest[1:]

	var ck bullion.LoaderCheckpoint
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &ck); err != nil {
			return fmt.Errorf("epochs: bad checkpoint %s: %w", *resume, err)
		}
		if *at == "" {
			// The checkpoint pins the generation; open it directly.
			*at = strconv.FormatUint(ck.Generation, 10)
		}
	}

	var ds *bullion.Dataset
	var err error
	if *at != "" {
		ds, err = bullion.OpenDatasetAt(dir, *at, nil)
	} else {
		ds, err = bullion.OpenDataset(dir, nil)
	}
	if err != nil {
		return err
	}
	defer ds.Close()

	opts := bullion.LoaderOptions{
		Columns:          cols,
		ShardRows:        *shardRows,
		Seed:             *seed,
		Epochs:           *nEpochs,
		BatchRows:        *batchRows,
		TargetRowsPerSec: *rate,
	}
	var ld *bullion.Loader
	if *resume != "" {
		ld, err = bullion.ResumeLoader(ds, ck, opts)
	} else {
		ld, err = bullion.NewLoader(ds, opts)
	}
	if err != nil {
		return err
	}
	defer ld.Close()

	start := time.Now()
	var rows, batches int64
	if *maxBatches > 0 || *consumers <= 1 {
		// Single-consumer iteration; -max-batches needs the caller-driven
		// loop to stop at an exact batch boundary for the checkpoint.
		for *maxBatches == 0 || batches < int64(*maxBatches) {
			b, err := ld.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			rows += int64(b.NumRows())
			batches++
		}
	} else {
		var mu sync.Mutex
		err = ld.Feed(*consumers, func(_ int, b *bullion.Batch) error {
			mu.Lock()
			rows += int64(b.NumRows())
			batches++
			mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	st := ld.Stats()
	fmt.Printf("%s: generation %d, %d shards/epoch, epoch %d\n",
		dir, st.Generation, st.EpochShards, st.Epoch)
	fmt.Printf("  streamed:  %d rows in %d batches in %v (%.0f rows/sec)\n",
		rows, batches, elapsed.Round(time.Microsecond), float64(rows)/elapsed.Seconds())
	fmt.Printf("  plan cost: %v (manifest only, zero data reads)\n", st.PlanTime.Round(time.Microsecond))

	if *ckPath != "" {
		cur := ld.Checkpoint()
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*ckPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  checkpoint: %s (epoch %d, shard %d, batch %d)\n",
			*ckPath, cur.Epoch, cur.Shard, cur.Batch)
	}
	return nil
}

func deleteRows(path string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("delete: no rows given")
	}
	rows := make([]uint64, len(args))
	for i, a := range args {
		v, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return fmt.Errorf("delete: bad row %q", a)
		}
		rows[i] = v
	}
	if isDataset(path) {
		ds, err := bullion.OpenDataset(path, nil)
		if err != nil {
			return err
		}
		defer ds.Close()
		if err := ds.Delete(rows); err != nil {
			return err
		}
		fmt.Printf("deleted %d rows (generation %d); %d live rows remain\n",
			len(rows), ds.Generation(), ds.NumLiveRows())
		return nil
	}
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.DeleteRows(rows); err != nil {
		return err
	}
	fmt.Printf("deleted %d rows (level %d); %d live rows remain\n",
		len(rows), f.Compliance(), f.NumLiveRows())
	return nil
}

func demo(path string) error {
	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "clk_seq_cids",
			Type: bullion.Type{Kind: bullion.List, Elem: bullion.Int64}, Sparse: true},
		bullion.Field{Name: "ctr", Type: bullion.Type{Kind: bullion.Float64}},
	)
	if err != nil {
		return err
	}
	n := 10000
	rng := rand.New(rand.NewSource(1))
	uid := make(bullion.Int64Data, n)
	clk := make(bullion.ListInt64Data, n)
	ctr := make(bullion.Float64Data, n)
	window := make([]int64, 32)
	for i := range window {
		window[i] = rng.Int63n(1 << 30)
	}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 20)
		if rng.Intn(3) == 0 {
			window = append([]int64{rng.Int63n(1 << 30)}, window[:len(window)-1]...)
		}
		clk[i] = append([]int64{}, window...)
		ctr[i] = rng.Float64()
	}
	batch, err := bullion.NewBatch(schema, []bullion.ColumnData{uid, clk, ctr})
	if err != nil {
		return err
	}
	w, err := bullion.Create(path, schema, nil)
	if err != nil {
		return err
	}
	if err := w.Write(batch); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s\n", n, path)
	return nil
}
