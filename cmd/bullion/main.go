// Command bullion inspects and manipulates Bullion files.
//
// Usage:
//
//	bullion inspect <file>             print header, schema summary, stats
//	bullion verify <file>              verify the Merkle checksum tree
//	bullion project <file> <col>...    print the first rows of columns
//	bullion delete <file> <row>...     delete rows (per the file's level)
//	bullion demo <file>                write a small demo ads file
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"bullion"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	var err error
	switch cmd {
	case "inspect":
		err = inspect(path)
	case "verify":
		err = verify(path)
	case "project":
		err = project(path, os.Args[3:])
	case "delete":
		err = deleteRows(path, os.Args[3:])
	case "demo":
		err = demo(path)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bullion: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bullion inspect <file>
  bullion verify <file>
  bullion project <file> <column>...
  bullion delete <file> <row>...
  bullion demo <file>`)
	os.Exit(2)
}

func inspect(path string) error {
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("rows:        %d (%d live)\n", f.NumRows(), f.NumLiveRows())
	fmt.Printf("columns:     %d\n", f.NumColumns())
	fmt.Printf("compliance:  level %d\n", f.Compliance())
	schema := f.Schema()
	byType := map[string]int{}
	for _, fd := range schema.Fields {
		k := fd.Type.String()
		if fd.Sparse {
			k += " (sparse)"
		}
		byType[k]++
	}
	fmt.Println("type breakdown:")
	for k, n := range byType {
		fmt.Printf("  %-30s %6d\n", k, n)
	}
	stats := f.Stats()
	fmt.Printf("data bytes:  %d (footer %d)\n", stats.DataBytes, stats.FooterBytes)
	fmt.Println("largest columns:")
	for _, c := range stats.TopColumnsBySize(5) {
		fmt.Printf("  %-30s %10d bytes  %4d pages\n", c.Name, c.CompressedBytes, c.Pages)
	}
	fmt.Println("page encodings:")
	for id, n := range stats.EncodingHistogram() {
		name := id.String()
		if uint8(id) == 0 {
			name = "SparseDelta" // composite sliding-window pages
		}
		fmt.Printf("  %-20s %6d pages\n", name, n)
	}
	return nil
}

func verify(path string) error {
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.VerifyChecksums(); err != nil {
		return err
	}
	fmt.Println("checksums OK")
	return nil
}

func project(path string, cols []string) error {
	if len(cols) == 0 {
		return fmt.Errorf("project: no columns given")
	}
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	batch, err := f.Project(cols...)
	if err != nil {
		return err
	}
	n := batch.NumRows()
	if n > 10 {
		n = 10
	}
	for r := 0; r < n; r++ {
		for c, col := range batch.Columns {
			fmt.Printf("%s=%v ", cols[c], cellString(col, r))
		}
		fmt.Println()
	}
	return nil
}

func cellString(col bullion.ColumnData, r int) string {
	switch d := col.(type) {
	case bullion.Int64Data:
		return fmt.Sprint(d[r])
	case bullion.Float64Data:
		return fmt.Sprintf("%.4f", d[r])
	case bullion.Float32Data:
		return fmt.Sprintf("%.4f", d[r])
	case bullion.BoolData:
		return fmt.Sprint(d[r])
	case bullion.BytesData:
		return string(d[r])
	case bullion.ListInt64Data:
		if len(d[r]) > 6 {
			return fmt.Sprintf("%v... (%d)", d[r][:6], len(d[r]))
		}
		return fmt.Sprint(d[r])
	default:
		return fmt.Sprintf("%T", col)
	}
}

func deleteRows(path string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("delete: no rows given")
	}
	rows := make([]uint64, len(args))
	for i, a := range args {
		v, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return fmt.Errorf("delete: bad row %q", a)
		}
		rows[i] = v
	}
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.DeleteRows(rows); err != nil {
		return err
	}
	fmt.Printf("deleted %d rows (level %d); %d live rows remain\n",
		len(rows), f.Compliance(), f.NumLiveRows())
	return nil
}

func demo(path string) error {
	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "clk_seq_cids",
			Type: bullion.Type{Kind: bullion.List, Elem: bullion.Int64}, Sparse: true},
		bullion.Field{Name: "ctr", Type: bullion.Type{Kind: bullion.Float64}},
	)
	if err != nil {
		return err
	}
	n := 10000
	rng := rand.New(rand.NewSource(1))
	uid := make(bullion.Int64Data, n)
	clk := make(bullion.ListInt64Data, n)
	ctr := make(bullion.Float64Data, n)
	window := make([]int64, 32)
	for i := range window {
		window[i] = rng.Int63n(1 << 30)
	}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 20)
		if rng.Intn(3) == 0 {
			window = append([]int64{rng.Int63n(1 << 30)}, window[:len(window)-1]...)
		}
		clk[i] = append([]int64{}, window...)
		ctr[i] = rng.Float64()
	}
	batch, err := bullion.NewBatch(schema, []bullion.ColumnData{uid, clk, ctr})
	if err != nil {
		return err
	}
	w, err := bullion.Create(path, schema, nil)
	if err != nil {
		return err
	}
	if err := w.Write(batch); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s\n", n, path)
	return nil
}
