// Command bullion inspects and manipulates Bullion files.
//
// Usage:
//
//	bullion inspect <file>             print header, schema summary, stats
//	bullion verify <file>              verify the Merkle checksum tree
//	bullion project <file> <col>...    print the first rows of columns
//	bullion scan <file> [flags] [col]  stream batches, report rows/sec
//	bullion ingest <file> [flags]      write a synthetic table, report rows/sec
//	bullion delete <file> <row>...     delete rows (per the file's level)
//	bullion demo <file>                write a small demo ads file
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"time"

	"bullion"
	"bullion/internal/iostats"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	var err error
	switch cmd {
	case "inspect":
		err = inspect(path)
	case "verify":
		err = verify(path)
	case "project":
		err = project(path, os.Args[3:])
	case "scan":
		err = scan(path, os.Args[3:])
	case "ingest":
		err = ingest(path, os.Args[3:])
	case "delete":
		err = deleteRows(path, os.Args[3:])
	case "demo":
		err = demo(path)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bullion: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bullion inspect <file>
  bullion verify <file>
  bullion project <file> <column>...
  bullion scan <file> [-batch N] [-workers N] [-coalesce-gap N] [-no-coalesce] [column]...
  bullion ingest <file> [-rows N] [-cols N] [-group N] [-workers N] [-no-cache]
  bullion delete <file> <row>...
  bullion demo <file>`)
	os.Exit(2)
}

func inspect(path string) error {
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("rows:        %d (%d live)\n", f.NumRows(), f.NumLiveRows())
	fmt.Printf("columns:     %d\n", f.NumColumns())
	fmt.Printf("compliance:  level %d\n", f.Compliance())
	schema := f.Schema()
	byType := map[string]int{}
	for _, fd := range schema.Fields {
		k := fd.Type.String()
		if fd.Sparse {
			k += " (sparse)"
		}
		byType[k]++
	}
	fmt.Println("type breakdown:")
	for k, n := range byType {
		fmt.Printf("  %-30s %6d\n", k, n)
	}
	stats := f.Stats()
	fmt.Printf("data bytes:  %d (footer %d)\n", stats.DataBytes, stats.FooterBytes)
	fmt.Println("largest columns:")
	for _, c := range stats.TopColumnsBySize(5) {
		fmt.Printf("  %-30s %10d bytes  %4d pages\n", c.Name, c.CompressedBytes, c.Pages)
	}
	fmt.Println("page encodings:")
	for id, n := range stats.EncodingHistogram() {
		name := id.String()
		if uint8(id) == 0 {
			name = "SparseDelta" // composite sliding-window pages
		}
		fmt.Printf("  %-20s %6d pages\n", name, n)
	}
	return nil
}

func verify(path string) error {
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.VerifyChecksums(); err != nil {
		return err
	}
	fmt.Println("checksums OK")
	return nil
}

func project(path string, cols []string) error {
	if len(cols) == 0 {
		return fmt.Errorf("project: no columns given")
	}
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	batch, err := f.Project(cols...)
	if err != nil {
		return err
	}
	n := batch.NumRows()
	if n > 10 {
		n = 10
	}
	for r := 0; r < n; r++ {
		for c, col := range batch.Columns {
			fmt.Printf("%s=%v ", cols[c], cellString(col, r))
		}
		fmt.Println()
	}
	return nil
}

func cellString(col bullion.ColumnData, r int) string {
	switch d := col.(type) {
	case bullion.Int64Data:
		return fmt.Sprint(d[r])
	case bullion.Float64Data:
		return fmt.Sprintf("%.4f", d[r])
	case bullion.Float32Data:
		return fmt.Sprintf("%.4f", d[r])
	case bullion.BoolData:
		return fmt.Sprint(d[r])
	case bullion.BytesData:
		return string(d[r])
	case bullion.ListInt64Data:
		if len(d[r]) > 6 {
			return fmt.Sprintf("%v... (%d)", d[r][:6], len(d[r]))
		}
		return fmt.Sprint(d[r])
	default:
		return fmt.Sprintf("%T", col)
	}
}

// scan streams the projected columns (default: all) through the parallel
// Scanner and reports throughput plus physical I/O from iostats.
func scan(path string, args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	batchRows := fs.Int("batch", bullion.DefaultScanBatchRows, "rows per batch")
	workers := fs.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
	coalesceGap := fs.Int("coalesce-gap", 0,
		"cold bytes to read through when merging reads (0 = default, negative = none)")
	noCoalesce := fs.Bool("no-coalesce", false, "one read per column chunk run (pre-planner path)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cols := fs.Args()

	osf, err := os.Open(path)
	if err != nil {
		return err
	}
	defer osf.Close()
	st, err := osf.Stat()
	if err != nil {
		return err
	}
	var counters iostats.Counters
	counters.Reset()
	f, err := bullion.Open(&iostats.ReaderAt{R: osf, C: &counters}, st.Size())
	if err != nil {
		return err
	}
	defer f.Close()

	sc, err := f.Scan(bullion.ScanOptions{
		Columns:         cols,
		BatchRows:       *batchRows,
		Workers:         *workers,
		CoalesceGap:     *coalesceGap,
		DisableCoalesce: *noCoalesce,
		ReuseBatches:    true,
	})
	if err != nil {
		return err
	}
	defer sc.Close()

	start := time.Now()
	var rows, batches int64
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		rows += int64(batch.NumRows())
		batches++
		sc.Recycle(batch)
	}
	elapsed := time.Since(start)
	stats := sc.Stats()
	phys := counters.Snapshot()
	fmt.Printf("scanned %d rows in %d batches (%d columns) in %v\n",
		rows, batches, len(sc.Schema().Fields), elapsed.Round(time.Microsecond))
	fmt.Printf("throughput:     %.0f rows/sec\n", float64(rows)/elapsed.Seconds())
	fmt.Printf("bytes decoded:  %d (%.1f MB/s)\n", stats.BytesRead,
		float64(stats.BytesRead)/elapsed.Seconds()/1e6)
	fmt.Printf("physical I/O:   %d reads, %d bytes, %d seeks\n",
		phys.ReadOps, phys.ReadBytes, phys.Seeks)
	fmt.Printf("coalescing:     %d scan reads, %d coalesced bytes, %d wasted gap bytes\n",
		stats.ReadOps, stats.CoalescedBytes, stats.WastedBytes)
	fmt.Printf("pages:          %d decoded, %d skipped; batches: %d emitted, %d skipped\n",
		stats.PagesDecoded, stats.PagesSkipped, stats.BatchesEmitted, stats.BatchesSkipped)
	return nil
}

// ingest writes a synthetic widetable-style feature table through the
// pipelined writer and reports ingest throughput plus physical I/O — the
// write-side twin of `bullion scan`.
func ingest(path string, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	rows := fs.Int("rows", 1<<20, "rows to write")
	cols := fs.Int("cols", 64, "int64 feature columns")
	group := fs.Int("group", 1<<16, "rows per row group")
	workers := fs.Int("workers", 0, "encode workers (0 = GOMAXPROCS)")
	noCache := fs.Bool("no-cache", false, "disable the cascade selector cache (re-select per page)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fields := make([]bullion.Field, *cols)
	names := make([]string, *cols)
	for c := range fields {
		names[c] = fmt.Sprintf("feat_%03d", c)
		fields[c] = bullion.Field{Name: names[c], Type: bullion.Type{Kind: bullion.Int64}}
	}
	schema, err := bullion.NewSchema(fields...)
	if err != nil {
		return err
	}

	osf, err := os.Create(path)
	if err != nil {
		return err
	}
	defer osf.Close()
	var counters iostats.Counters
	counters.Reset()
	opts := bullion.DefaultOptions()
	opts.GroupRows = *group
	opts.EncodeWorkers = *workers
	if *noCache {
		opts.Enc = bullion.DefaultEncodingOptions()
		opts.Enc.ResampleDrift = -1
	}
	w, err := bullion.NewWriter(&iostats.Writer{W: osf, C: &counters}, schema, opts)
	if err != nil {
		return err
	}

	// Pre-generate the synthetic batches — a mix of narrow-range,
	// clustered, and wide values so the cascade has real decisions to
	// make — so the timed region measures the writer, not the rng.
	const batchRows = 8192
	rng := rand.New(rand.NewSource(99))
	var batchList []*bullion.Batch
	written := 0
	for written < *rows {
		n := batchRows
		if written+n > *rows {
			n = *rows - written
		}
		data := make([]bullion.ColumnData, *cols)
		for c := range data {
			vals := make(bullion.Int64Data, n)
			switch c % 3 {
			case 0:
				for r := range vals {
					vals[r] = rng.Int63n(1 << 10)
				}
			case 1:
				for r := range vals {
					vals[r] = int64(written+r) / 8
				}
			default:
				for r := range vals {
					vals[r] = rng.Int63n(1 << 40)
				}
			}
			data[c] = vals
		}
		batch, err := bullion.NewBatch(schema, data)
		if err != nil {
			return err
		}
		batchList = append(batchList, batch)
		written += n
	}

	start := time.Now()
	for _, batch := range batchList {
		if err := w.Write(batch); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	phys := counters.Snapshot()
	hits, resamples := w.SelectorStats()
	fmt.Printf("ingested %d rows x %d columns in %v\n", written, *cols, elapsed.Round(time.Microsecond))
	fmt.Printf("throughput:     %.0f rows/sec (%.1f MB/s encoded)\n",
		float64(written)/elapsed.Seconds(), float64(phys.WriteBytes)/elapsed.Seconds()/1e6)
	fmt.Printf("physical I/O:   %d writes, %d bytes\n", phys.WriteOps, phys.WriteBytes)
	fmt.Printf("selector cache: %d reused, %d sampled", hits, resamples)
	if total := hits + resamples; total > 0 {
		fmt.Printf(" (%.1f%% amortized)", 100*float64(hits)/float64(total))
	}
	fmt.Println()
	return nil
}

func deleteRows(path string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("delete: no rows given")
	}
	rows := make([]uint64, len(args))
	for i, a := range args {
		v, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return fmt.Errorf("delete: bad row %q", a)
		}
		rows[i] = v
	}
	f, err := bullion.OpenPath(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.DeleteRows(rows); err != nil {
		return err
	}
	fmt.Printf("deleted %d rows (level %d); %d live rows remain\n",
		len(rows), f.Compliance(), f.NumLiveRows())
	return nil
}

func demo(path string) error {
	schema, err := bullion.NewSchema(
		bullion.Field{Name: "uid", Type: bullion.Type{Kind: bullion.Int64}},
		bullion.Field{Name: "clk_seq_cids",
			Type: bullion.Type{Kind: bullion.List, Elem: bullion.Int64}, Sparse: true},
		bullion.Field{Name: "ctr", Type: bullion.Type{Kind: bullion.Float64}},
	)
	if err != nil {
		return err
	}
	n := 10000
	rng := rand.New(rand.NewSource(1))
	uid := make(bullion.Int64Data, n)
	clk := make(bullion.ListInt64Data, n)
	ctr := make(bullion.Float64Data, n)
	window := make([]int64, 32)
	for i := range window {
		window[i] = rng.Int63n(1 << 30)
	}
	for i := 0; i < n; i++ {
		uid[i] = int64(i / 20)
		if rng.Intn(3) == 0 {
			window = append([]int64{rng.Int63n(1 << 30)}, window[:len(window)-1]...)
		}
		clk[i] = append([]int64{}, window...)
		ctr[i] = rng.Float64()
	}
	batch, err := bullion.NewBatch(schema, []bullion.ColumnData{uid, clk, ctr})
	if err != nil {
		return err
	}
	w, err := bullion.Create(path, schema, nil)
	if err != nil {
		return err
	}
	if err := w.Write(batch); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s\n", n, path)
	return nil
}
