// Command adgen generates a synthetic ads training table with the paper's
// Table 1 type mix and prints the Table 1 / Figure 1 reports.
//
// Usage:
//
//	adgen -print-breakdown              print Table 1 and the generated schema histogram
//	adgen -print-census                 print the Figure 1 size census
//	adgen -out ads.bln -scale 100 -rows 2000
//	                                    write a 1/100-scale ads table
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bullion"
	"bullion/internal/core"
	"bullion/internal/experiments"
	"bullion/internal/workload"
)

func main() {
	printBreakdown := flag.Bool("print-breakdown", false, "print the Table 1 breakdown")
	printCensus := flag.Bool("print-census", false, "print the Figure 1 census")
	out := flag.String("out", "", "output path for a generated ads table")
	scale := flag.Int("scale", 100, "schema scale-down factor (1 = full 17,733 columns)")
	rows := flag.Int("rows", 2000, "rows to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *printBreakdown {
		if err := experiments.Tab1(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *printCensus {
		if err := experiments.Fig1(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *out != "" {
		if err := generate(*out, *scale, *rows, *seed); err != nil {
			fatal(err)
		}
	}
	if !*printBreakdown && !*printCensus && *out == "" {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adgen: %v\n", err)
	os.Exit(1)
}

// generate writes a scaled ads table with realistic per-type content.
func generate(path string, scale, rows int, seed int64) error {
	schema, err := workload.AdsSchema(scale, true)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	cols := workload.AdsColumns(rng, schema, rows)
	batch, err := core.NewBatch(schema, cols)
	if err != nil {
		return err
	}
	opts := bullion.DefaultOptions()
	opts.GroupRows = 4096
	w, err := bullion.Create(path, schema, opts)
	if err != nil {
		return err
	}
	if err := w.Write(batch); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d rows x %d columns to %s (%d bytes)\n",
		rows, len(schema.Fields), path, st.Size())
	return nil
}
