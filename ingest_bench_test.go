package bullion

// Ingest benchmarks: the pipelined parallel write path against the seed's
// sequential design, over the same 64-column widetable workload the scan
// benchmarks use. The baseline configuration reproduces the pre-pipeline
// writer: one encode worker and per-page cascade selection (selector
// cache disabled). BenchmarkIngest{1,4,8} run the pipeline with the
// per-column selector cache at 1/4/8 encode workers. Two storage models
// bracket the regimes:
//
//   - in-memory sink: encode-bound, so the win comes from amortized
//     cascade selection plus (on multi-core hosts) parallel column encode;
//   - "blob": every Write carries fixed latency (object-storage PUT /
//     cold NVMe). The serializer goroutine absorbs that latency while
//     encode workers keep running, so pipelining wins even on one core.
//
// Recorded in BENCH_ingest.json (see that file for the capture command).
// All configurations emit byte-identical files — asserted per iteration.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const (
	ingestBenchCols    = 64
	ingestBenchRows    = 32768
	ingestBenchGroup   = 8192 // 4 row groups
	ingestBenchBatch   = 4096
	ingestBenchLatency = time.Millisecond
)

var ingestBench struct {
	once    sync.Once
	schema  *Schema
	batches []*Batch
	size    int64 // encoded size, fixed by determinism
}

// ingestBenchData builds the widetable batches once per process.
func ingestBenchData(b *testing.B) (*Schema, []*Batch) {
	b.Helper()
	ingestBench.once.Do(func() {
		rng := rand.New(rand.NewSource(1759))
		fields := make([]Field, ingestBenchCols)
		cols := make([]ColumnData, ingestBenchCols)
		for c := 0; c < ingestBenchCols; c++ {
			fields[c] = Field{Name: fmt.Sprintf("feat_%03d", c), Type: Type{Kind: Int64}}
			vals := make(Int64Data, ingestBenchRows)
			for r := range vals {
				vals[r] = rng.Int63n(1 << 20)
			}
			cols[c] = vals
		}
		schema, err := NewSchema(fields...)
		if err != nil {
			panic(err)
		}
		for lo := 0; lo < ingestBenchRows; lo += ingestBenchBatch {
			bcols := make([]ColumnData, ingestBenchCols)
			for c := range bcols {
				bcols[c] = cols[c].(Int64Data)[lo : lo+ingestBenchBatch]
			}
			batch, err := NewBatch(schema, bcols)
			if err != nil {
				panic(err)
			}
			ingestBench.batches = append(ingestBench.batches, batch)
		}
		ingestBench.schema = schema
	})
	return ingestBench.schema, ingestBench.batches
}

// latencyWriter adds a fixed delay to every Write — a first-order model
// of per-request blob-storage latency. Sleeping releases the CPU, so the
// encode workers genuinely overlap with the serializer's writes.
type latencyWriter struct {
	n int64
	d time.Duration
}

func (l *latencyWriter) Write(p []byte) (int, error) {
	if l.d > 0 {
		time.Sleep(l.d)
	}
	l.n += int64(len(p))
	return len(p), nil
}

func benchIngest(b *testing.B, workers int, cache bool, latency time.Duration) {
	b.ReportAllocs()
	schema, batches := ingestBenchData(b)
	opts := &Options{
		RowsPerPage:   1024,
		GroupRows:     ingestBenchGroup,
		Compliance:    Level1,
		EncodeWorkers: workers,
	}
	if !cache {
		opts.Enc = DefaultEncodingOptions()
		opts.Enc.ResampleDrift = -1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &latencyWriter{d: latency}
		w, err := NewWriter(sink, schema, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if err := w.Write(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		// Determinism guard: every cached configuration must emit the
		// same bytes regardless of worker count.
		if cache {
			if ingestBench.size == 0 {
				ingestBench.size = sink.n
			} else if sink.n != ingestBench.size {
				b.Fatalf("encoded size %d != %d: output depends on configuration", sink.n, ingestBench.size)
			}
		}
	}
	rows := float64(ingestBenchRows) * float64(b.N)
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/sec")
}

// The single-threaded baseline reproduces the seed's write path: one
// encode worker, full cascade selection on every page.
func BenchmarkIngestBaseline(b *testing.B) { benchIngest(b, 1, false, 0) }
func BenchmarkIngest1(b *testing.B)        { benchIngest(b, 1, true, 0) }
func BenchmarkIngest4(b *testing.B)        { benchIngest(b, 4, true, 0) }
func BenchmarkIngest8(b *testing.B)        { benchIngest(b, 8, true, 0) }

func BenchmarkIngestBlobBaseline(b *testing.B) { benchIngest(b, 1, false, ingestBenchLatency) }
func BenchmarkIngestBlob1(b *testing.B)        { benchIngest(b, 1, true, ingestBenchLatency) }
func BenchmarkIngestBlob8(b *testing.B)        { benchIngest(b, 8, true, ingestBenchLatency) }
