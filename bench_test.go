package bullion

// One benchmark per table/figure in the paper's evaluation, mirroring the
// cmd/experiments harness (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured). Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics report the shape the paper cares about (compressed size
// ratios, bytes written, bytes hashed) alongside ns/op.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"

	"bullion/internal/core"
	"bullion/internal/enc"
	"bullion/internal/iostats"
	"bullion/internal/legacy"
	"bullion/internal/merkle"
	"bullion/internal/multimodal"
	"bullion/internal/quant"
	"bullion/internal/sparse"
	"bullion/internal/workload"
)

type benchFile struct{ data []byte }

func (m *benchFile) Write(p []byte) (int, error) {
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *benchFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *benchFile) WriteAt(p []byte, off int64) (int, error) {
	return copy(m.data[off:], p), nil
}

func (m *benchFile) Size() int64 { return int64(len(m.data)) }

// ---- Figure 1: observational census (completeness) ----

func BenchmarkFig1Census(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := workload.Figure1Census(); len(c) != 10 {
			b.Fatal("census size")
		}
	}
}

// ---- Figure 2: Merkle update vs monolithic re-checksum ----

func fig2Pages(b *testing.B) [][][]byte {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	gp := make([][][]byte, 16)
	for g := range gp {
		gp[g] = make([][]byte, 16)
		for p := range gp[g] {
			buf := make([]byte, 64<<10)
			rng.Read(buf)
			gp[g][p] = buf
		}
	}
	return gp
}

func BenchmarkFig2MerkleUpdate(b *testing.B) {
	b.ReportAllocs()
	gp := fig2Pages(b)
	tree := merkle.Build(gp)
	newPage := make([]byte, 64<<10)
	rand.New(rand.NewSource(9)).Read(newPage)
	tree.ResetCounter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Update(i%16, (i/16)%16, newPage); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tree.HashedBytes())/float64(b.N), "hashed_B/op")
}

func BenchmarkFig2MonolithicChecksum(b *testing.B) {
	b.ReportAllocs()
	gp := fig2Pages(b)
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		_, n := merkle.MonolithicChecksum(gp)
		total += n
	}
	b.ReportMetric(float64(total)/float64(b.N), "hashed_B/op")
}

// ---- Table 1: ads schema generation and histogram ----

func BenchmarkTab1AdsSchema(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := workload.AdsSchema(10, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(workload.SchemaBreakdown(s)) == 0 {
			b.Fatal("empty breakdown")
		}
	}
}

// ---- Figure 4: sparse sliding-window delta vs baselines ----

func fig4Vectors(b *testing.B) ([][]int64, []int64, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	vectors := workload.SlidingWindows(rng, 2048, 256, 0.4)
	var flat []int64
	raw := 0
	for _, v := range vectors {
		flat = append(flat, v...)
		raw += 8 * len(v)
	}
	return vectors, flat, raw
}

func BenchmarkFig4SparseDeltaEncode(b *testing.B) {
	b.ReportAllocs()
	vectors, _, raw := fig4Vectors(b)
	b.SetBytes(int64(raw))
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sparse.EncodeColumn(vectors, sparse.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		size = len(out)
	}
	b.ReportMetric(100*float64(size)/float64(raw), "size_%ofplain")
}

func BenchmarkFig4SparseDeltaDecode(b *testing.B) {
	b.ReportAllocs()
	vectors, _, raw := fig4Vectors(b)
	encoded, err := sparse.EncodeColumn(vectors, sparse.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(raw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.DecodeColumn(encoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4BaselineChunked(b *testing.B) {
	b.ReportAllocs()
	_, flat, raw := fig4Vectors(b)
	b.SetBytes(int64(raw))
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := enc.EncodeIntsWith(nil, enc.Chunked, flat, enc.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		size = len(out)
	}
	b.ReportMetric(100*float64(size)/float64(raw), "size_%ofplain")
}

func BenchmarkFig4BaselinePlain(b *testing.B) {
	b.ReportAllocs()
	_, flat, raw := fig4Vectors(b)
	b.SetBytes(int64(raw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeIntsWith(nil, enc.Plain, flat, enc.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 5: metadata parsing vs feature count ----

func buildWideBullion(b *testing.B, n int) *benchFile {
	b.Helper()
	fields := make([]core.Field, n)
	cols := make([]core.ColumnData, n)
	vals := core.Int64Data{1, 2, 3, 4}
	for i := 0; i < n; i++ {
		fields[i] = core.Field{Name: fmt.Sprintf("feat_%06d", i), Type: core.Type{Kind: core.Int64}}
		cols[i] = vals
	}
	schema, err := core.NewSchema(fields...)
	if err != nil {
		b.Fatal(err)
	}
	mf := &benchFile{}
	opts := core.DefaultOptions()
	opts.Compliance = core.Level0
	w, err := core.NewWriter(mf, schema, opts)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := core.NewBatch(schema, cols)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return mf
}

func buildWideLegacy(b *testing.B, n int) *benchFile {
	b.Helper()
	schema := make([]legacy.SchemaElement, n)
	cols := make([]any, n)
	vals := []int64{1, 2, 3, 4}
	for i := 0; i < n; i++ {
		schema[i] = legacy.SchemaElement{Name: fmt.Sprintf("feat_%06d", i), Type: legacy.TypeInt64}
		cols[i] = vals
	}
	mf := &benchFile{}
	if err := legacy.NewWriter(schema).WriteFile(mf, cols, 4); err != nil {
		b.Fatal(err)
	}
	return mf
}

func BenchmarkFig5MetadataBullion(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1000, 5000, 10000, 20000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			b.ReportAllocs()
			mf := buildWideBullion(b, n)
			target := fmt.Sprintf("feat_%06d", n/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := core.Open(mf, mf.Size())
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := f.LookupColumn(target); !ok {
					b.Fatal("lookup failed")
				}
			}
		})
	}
}

func BenchmarkFig5MetadataLegacy(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1000, 5000, 10000, 20000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			b.ReportAllocs()
			mf := buildWideLegacy(b, n)
			target := fmt.Sprintf("feat_%06d", n/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := legacy.Open(mf, mf.Size())
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := f.LookupColumn(target); !ok {
					b.Fatal("lookup failed")
				}
			}
		})
	}
}

// ---- Figure 6: storage quantization ----

func fig6Embeddings(b *testing.B) []float32 {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	embs := workload.Embeddings(rng, 2048, 64)
	flat := make([]float32, 0, 2048*64)
	for _, e := range embs {
		flat = append(flat, e...)
	}
	return flat
}

func BenchmarkFig6Quantize(b *testing.B) {
	b.ReportAllocs()
	flat := fig6Embeddings(b)
	for _, f := range workload.QuantTargets() {
		b.Run(f.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(4 * len(flat)))
			var stored int
			for i := 0; i < b.N; i++ {
				bits, err := quant.Quantize(flat, f)
				if err != nil {
					b.Fatal(err)
				}
				encoded, err := enc.EncodeInts(nil, bits, enc.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				stored = len(encoded)
			}
			b.ReportMetric(100*float64(stored)/float64(4*len(flat)), "size_%offp32")
		})
	}
}

func BenchmarkFig6Dequantize(b *testing.B) {
	b.ReportAllocs()
	flat := fig6Embeddings(b)
	for _, f := range workload.QuantTargets() {
		b.Run(f.String(), func(b *testing.B) {
			b.ReportAllocs()
			bits, err := quant.Quantize(flat, f)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(4 * len(flat)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := quant.Dequantize(bits, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 7: quality-aware multimodal reads ----

func fig7Dataset(b *testing.B, presort bool) (*core.File, *iostats.Counters) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	samples := multimodal.GenerateSamples(rng, 8000)
	metaOut := &benchFile{}
	mediaOut := &benchFile{}
	if err := multimodal.WriteDataset(metaOut, mediaOut, samples, presort); err != nil {
		b.Fatal(err)
	}
	var c iostats.Counters
	c.Reset()
	f, err := core.Open(&iostats.ReaderAt{R: metaOut, C: &c}, metaOut.Size())
	if err != nil {
		b.Fatal(err)
	}
	return f, &c
}

func BenchmarkFig7QualityAwarePresorted(b *testing.B) {
	b.ReportAllocs()
	f, c := fig7Dataset(b, true)
	b.ResetTimer()
	var bytesRead int64
	for i := 0; i < b.N; i++ {
		before := c.Snapshot()
		stats, err := multimodal.TrainingRead(f, c, nil, nil, 0.7, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		if stats.SamplesRead == 0 {
			b.Fatal("no samples selected")
		}
		bytesRead += c.Snapshot().Sub(before).ReadBytes
	}
	b.ReportMetric(float64(bytesRead)/float64(b.N), "read_B/op")
}

func BenchmarkFig7QualityAwareUnsorted(b *testing.B) {
	b.ReportAllocs()
	f, c := fig7Dataset(b, false)
	b.ResetTimer()
	var bytesRead int64
	for i := 0; i < b.N; i++ {
		before := c.Snapshot()
		stats, err := multimodal.TrainingRead(f, c, nil, nil, 0.7, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		if stats.SamplesRead == 0 {
			b.Fatal("no samples selected")
		}
		bytesRead += c.Snapshot().Sub(before).ReadBytes
	}
	b.ReportMetric(float64(bytesRead)/float64(b.N), "read_B/op")
}

// ---- Table 2: encoding catalog ----

func benchIntScheme(b *testing.B, id enc.SchemeID, gen func(*rand.Rand, int) []int64) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(19))
	vs := gen(rng, 65536)
	raw := 8 * len(vs)
	opts := enc.DefaultOptions()
	encoded, err := enc.EncodeIntsWith(nil, id, vs, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(raw))
		for i := 0; i < b.N; i++ {
			if _, err := enc.EncodeIntsWith(nil, id, vs, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*float64(len(encoded))/float64(raw), "size_%ofplain")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(raw))
		for i := 0; i < b.N; i++ {
			if _, err := enc.DecodeInts(encoded, len(vs)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func genBenchRuns(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	for i := 0; i < n; {
		v := int64(rng.Intn(8))
		l := rng.Intn(30) + 1
		for j := 0; j < l && i < n; j++ {
			vs[i] = v
			i++
		}
	}
	return vs
}

func genBenchSorted(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	cur := int64(0)
	for i := range vs {
		cur += int64(rng.Intn(50))
		vs[i] = cur
	}
	return vs
}

func genBenchSmall(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(rng.Intn(100000))
	}
	return vs
}

func genBenchClustered(rng *rand.Rand, n int) []int64 {
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = 1<<41 + int64(rng.Intn(1<<14))
	}
	return vs
}

func genBenchLowCard(rng *rand.Rand, n int) []int64 {
	domain := []int64{3, 1 << 20, -9, 42, 7777}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = domain[rng.Intn(len(domain))]
	}
	return vs
}

func BenchmarkTab2RLE(b *testing.B)        { benchIntScheme(b, enc.RLE, genBenchRuns) }
func BenchmarkTab2Dict(b *testing.B)       { benchIntScheme(b, enc.Dict, genBenchLowCard) }
func BenchmarkTab2Delta(b *testing.B)      { benchIntScheme(b, enc.Delta, genBenchSorted) }
func BenchmarkTab2FOR(b *testing.B)        { benchIntScheme(b, enc.FOR, genBenchClustered) }
func BenchmarkTab2PFOR(b *testing.B)       { benchIntScheme(b, enc.PFOR, genBenchClustered) }
func BenchmarkTab2BP128(b *testing.B)      { benchIntScheme(b, enc.FastBP128, genBenchSmall) }
func BenchmarkTab2BitPack(b *testing.B)    { benchIntScheme(b, enc.BitPack, genBenchSmall) }
func BenchmarkTab2Varint(b *testing.B)     { benchIntScheme(b, enc.Varint, genBenchSmall) }
func BenchmarkTab2Huffman(b *testing.B)    { benchIntScheme(b, enc.Huffman, genBenchLowCard) }
func BenchmarkTab2BitShuffle(b *testing.B) { benchIntScheme(b, enc.BitShuffle, genBenchSmall) }
func BenchmarkTab2Chunked(b *testing.B)    { benchIntScheme(b, enc.Chunked, genBenchRuns) }

func BenchmarkTab2Gorilla(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(21))
	vs := make([]float64, 65536)
	f := 100.0
	for i := range vs {
		// Sensor-style series: a quantized random walk, Gorilla's target
		// shape (matching the tab2 experiment).
		f += rng.NormFloat64()
		vs[i] = math.Round(f*4) / 4
	}
	raw := 8 * len(vs)
	opts := enc.DefaultOptions()
	encoded, err := enc.EncodeFloatsWith(nil, enc.GorillaF, vs, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(raw))
		for i := 0; i < b.N; i++ {
			if _, err := enc.EncodeFloatsWith(nil, enc.GorillaF, vs, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*float64(len(encoded))/float64(raw), "size_%ofplain")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(raw))
		for i := 0; i < b.N; i++ {
			if _, err := enc.DecodeFloats(encoded, len(vs)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTab2FSST(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(23))
	urls := make([][]byte, 8192)
	raw := 0
	for i := range urls {
		urls[i] = []byte(fmt.Sprintf("https://cdn.example.com/v/%08x?t=%d", rng.Uint32(), rng.Intn(600)))
		raw += len(urls[i])
	}
	opts := enc.DefaultOptions()
	encoded, err := enc.EncodeBytesWith(nil, enc.FSST, urls, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(raw))
		for i := 0; i < b.N; i++ {
			if _, err := enc.EncodeBytesWith(nil, enc.FSST, urls, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*float64(len(encoded))/float64(raw), "size_%ofplain")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(raw))
		for i := 0; i < b.N; i++ {
			if _, err := enc.DecodeBytes(encoded, len(urls)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTab2Cascade measures the full selector (the adaptive path the
// writer actually uses).
func BenchmarkTab2Cascade(b *testing.B) {
	b.ReportAllocs()
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand, int) []int64
	}{
		{"runs", genBenchRuns}, {"sorted", genBenchSorted},
		{"clustered", genBenchClustered}, {"lowcard", genBenchLowCard},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(29))
			vs := tc.gen(rng, 65536)
			raw := 8 * len(vs)
			opts := enc.DefaultOptions()
			var size int
			b.SetBytes(int64(raw))
			for i := 0; i < b.N; i++ {
				encoded, err := enc.EncodeInts(nil, vs, opts)
				if err != nil {
					b.Fatal(err)
				}
				size = len(encoded)
			}
			b.ReportMetric(100*float64(size)/float64(raw), "size_%ofplain")
		})
	}
}

// ---- §2.1 deletion: in-place vs rewrite ----

func deletionFixture(b *testing.B) (*benchFile, *core.Schema, *core.Batch, *core.Options) {
	b.Helper()
	const rows = 50000
	schema, err := core.NewSchema(
		core.Field{Name: "uid", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "ad_id", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "label", Type: core.Type{Kind: core.Float64}},
		core.Field{Name: "tag", Type: core.Type{Kind: core.String}},
	)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	uid := make(core.Int64Data, rows)
	adID := make(core.Int64Data, rows)
	label := make(core.Float64Data, rows)
	tag := make(core.BytesData, rows)
	for i := 0; i < rows; i++ {
		uid[i] = int64(i / 100)
		adID[i] = 1<<40 + int64(i)
		label[i] = rng.Float64()
		tag[i] = []byte(fmt.Sprintf("u%d-r%d", uid[i], i))
	}
	batch, err := core.NewBatch(schema, []core.ColumnData{uid, adID, label, tag})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.RowsPerPage = 512
	opts.GroupRows = 1 << 14
	opts.Compliance = core.Level2
	mf := &benchFile{}
	w, err := core.NewWriter(mf, schema, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return mf, schema, batch, opts
}

func BenchmarkDeletionInPlace(b *testing.B) {
	b.ReportAllocs()
	master, _, _, _ := deletionFixture(b)
	del := make([]uint64, 1000) // 2% of rows, clustered (one user's span)
	for i := range del {
		del[i] = uint64(20000 + i)
	}
	b.ResetTimer()
	var written int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mf := &benchFile{data: append([]byte{}, master.data...)}
		f, err := core.Open(mf, mf.Size())
		if err != nil {
			b.Fatal(err)
		}
		var c iostats.Counters
		c.Reset()
		b.StartTimer()
		if err := f.DeleteRows(&iostats.WriterAt{W: mf, C: &c}, del); err != nil {
			b.Fatal(err)
		}
		written += c.Snapshot().WriteBytes
	}
	b.ReportMetric(float64(written)/float64(b.N), "written_B/op")
}

func BenchmarkDeletionRewrite(b *testing.B) {
	b.ReportAllocs()
	master, _, _, opts := deletionFixture(b)
	f, err := core.Open(master, master.Size())
	if err != nil {
		b.Fatal(err)
	}
	del := make([]uint64, 1000)
	for i := range del {
		del[i] = uint64(20000 + i)
	}
	b.ResetTimer()
	var written int64
	for i := 0; i < b.N; i++ {
		var c iostats.Counters
		c.Reset()
		out := &iostats.Writer{W: &benchFile{}, C: &c}
		if _, err := f.RewriteWithoutRows(out, del, opts); err != nil {
			b.Fatal(err)
		}
		written += c.Snapshot().WriteBytes
	}
	b.ReportMetric(float64(written)/float64(b.N), "written_B/op")
}

// ---- Ablation: Level-2 maskable-cascade restriction cost ----
//
// DESIGN.md calls out that compliance costs compression: Level-2 files
// restrict the cascade to mask-safe schemes and reserve page slack. This
// bench quantifies that storage overhead against a Level-0 write.

func BenchmarkAblationComplianceOverhead(b *testing.B) {
	b.ReportAllocs()
	schema, err := core.NewSchema(
		core.Field{Name: "ts", Type: core.Type{Kind: core.Int64}},
		core.Field{Name: "val", Type: core.Type{Kind: core.Float64}},
	)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 50000
	rng := rand.New(rand.NewSource(37))
	ts := make(core.Int64Data, rows)
	val := make(core.Float64Data, rows)
	cur := int64(1700000000)
	f := 100.0
	for i := 0; i < rows; i++ {
		cur += int64(rng.Intn(5))
		ts[i] = cur
		f += rng.NormFloat64()
		val[i] = f
	}
	batch, err := core.NewBatch(schema, []core.ColumnData{ts, val})
	if err != nil {
		b.Fatal(err)
	}
	sizes := map[core.Level]int64{}
	for _, level := range []core.Level{core.Level0, core.Level2} {
		opts := core.DefaultOptions()
		opts.Compliance = level
		mf := &benchFile{}
		w, err := core.NewWriter(mf, schema, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Write(batch); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		sizes[level] = mf.Size()
	}
	for i := 0; i < b.N; i++ {
		_ = sizes
	}
	b.ReportMetric(float64(sizes[core.Level0]), "level0_B")
	b.ReportMetric(float64(sizes[core.Level2]), "level2_B")
	b.ReportMetric(100*float64(sizes[core.Level2]-sizes[core.Level0])/float64(sizes[core.Level0]), "overhead_%")
}

// ---- End-to-end: write/scan throughput of the full format ----

func BenchmarkEndToEndWrite(b *testing.B) {
	b.ReportAllocs()
	_, schema, batch, opts := deletionFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mf := &benchFile{}
		w, err := core.NewWriter(mf, schema, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Write(batch); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndProject(b *testing.B) {
	b.ReportAllocs()
	master, _, _, _ := deletionFixture(b)
	f, err := core.Open(master, master.Size())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := f.Project("uid", "label")
		if err != nil {
			b.Fatal(err)
		}
		if batch.NumRows() != 50000 {
			b.Fatal("row count")
		}
	}
}
