package bullion

// End-to-end integration: the paper's headline workflow on a (scaled)
// Table 1 ads table through the public API — write, 10% feature
// projection, coalesced hot-set reads, GDPR user erasure, integrity
// verification, and schema evolution, all against one file on disk.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"bullion/internal/core"
	"bullion/internal/workload"
)

func TestAdsTableEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("writes a ~180-column table")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ads.bln")

	// 1. A 1/100-scale Table 1 schema (~180 leaf columns) with realistic
	//    content, user-sorted.
	schema, err := workload.AdsSchema(100, true)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 2000
	rng := rand.New(rand.NewSource(77))
	cols := workload.AdsColumns(rng, schema, rows)
	batch, err := core.NewBatch(schema, cols)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.GroupRows = 512
	w, err := Create(path, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ads table: %d rows x %d columns, %d bytes", rows, len(schema.Fields), st.Size())

	f, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumRows() != rows || f.NumColumns() != len(schema.Fields) {
		t.Fatalf("geometry: %d rows, %d cols", f.NumRows(), f.NumColumns())
	}

	// 2. A training job projects ~10% of features (the paper's access
	//    pattern).
	var hot []string
	for i, field := range schema.Fields {
		if i%10 == 0 {
			hot = append(hot, field.Name)
		}
	}
	proj, err := f.Project(hot...)
	if err != nil {
		t.Fatal(err)
	}
	if proj.NumRows() != rows || len(proj.Columns) != len(hot) {
		t.Fatalf("projection: %d rows x %d cols", proj.NumRows(), len(proj.Columns))
	}

	// 3. The same hot set through coalesced reads must agree.
	proj2, err := f.ProjectCoalesced(hot...)
	if err != nil {
		t.Fatal(err)
	}
	for c := range hot {
		a, ok := proj.Columns[c].(ListInt64Data)
		if !ok {
			continue
		}
		b := proj2.Columns[c].(ListInt64Data)
		for r := range a {
			if len(a[r]) != len(b[r]) {
				t.Fatalf("coalesced projection disagrees at %s row %d", hot[c], r)
			}
			for k := range a[r] {
				if a[r][k] != b[r][k] {
					t.Fatalf("coalesced projection disagrees at %s row %d elem %d", hot[c], r, k)
				}
			}
		}
	}

	// 4. GDPR: user 3 (rows 24..31, uid = i/8) requests erasure.
	var del []uint64
	for r := uint64(24); r < 32; r++ {
		del = append(del, r)
	}
	if err := f.DeleteRows(del); err != nil {
		t.Fatal(err)
	}
	if got := f.NumLiveRows(); got != rows-8 {
		t.Fatalf("live rows = %d", got)
	}
	uids, err := f.ReadColumn("uid")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range uids.(Int64Data) {
		if v == 3 {
			t.Fatal("erased user still visible")
		}
	}
	if err := f.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}

	// 5. Schema evolution: next month's training config includes a feature
	//    this file predates.
	evolved, err := f.ProjectEvolved([]Field{
		{Name: "uid", Type: Type{Kind: Int64}},
		{Name: "feat_added_next_month", Type: Type{Kind: List, Elem: Int64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if evolved.NumRows() != rows-8 {
		t.Fatalf("evolved rows = %d", evolved.NumRows())
	}
	if got := evolved.Columns[1].(ListInt64Data); len(got[0]) != 0 {
		t.Fatal("future feature should default to empty lists")
	}

	// 6. Reopen from disk: everything persisted.
	f2, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.NumLiveRows() != rows-8 {
		t.Fatalf("reopened live rows = %d", f2.NumLiveRows())
	}
	if err := f2.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

// TestSparseColumnsSurviveAdsPipeline verifies every sparse column in the
// scaled ads schema round-trips through the full pipeline.
func TestSparseColumnsSurviveAdsPipeline(t *testing.T) {
	schema, err := workload.AdsSchema(400, true)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 600
	rng := rand.New(rand.NewSource(78))
	cols := workload.AdsColumns(rng, schema, rows)
	batch, err := core.NewBatch(schema, cols)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sparse.bln")
	w, err := Create(path, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	checked := 0
	for ci, field := range schema.Fields {
		if !field.Sparse {
			continue
		}
		data, err := f.ReadColumn(field.Name)
		if err != nil {
			t.Fatalf("%s: %v", field.Name, err)
		}
		got := data.(ListInt64Data)
		want := cols[ci].(ListInt64Data)
		for r := range want {
			if len(got[r]) != len(want[r]) {
				t.Fatalf("%s row %d: len %d, want %d", field.Name, r, len(got[r]), len(want[r]))
			}
			for k := range want[r] {
				if got[r][k] != want[r][k] {
					t.Fatalf("%s row %d elem %d mismatch", field.Name, r, k)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no sparse columns in scaled schema")
	}
	t.Logf("verified %d sparse columns end to end", checked)
}
