package bullion

// Remote-read benchmarks: a closed-loop scan over a fault backend whose
// reads suffer seeded tail-latency spikes — the object-storage pathology
// hedged requests exist to absorb. Each iteration is one full dataset
// scan; the benchmark reports the p50 and p99 per-scan latency, and the
// hedged/unhedged pair (recorded in BENCH_remote.json) is the
// acceptance comparison: hedging must cut p99 by >=2x under spikes
// while leaving the spike-free baseline untouched.

import (
	"io"
	"sort"
	"testing"
	"time"

	"bullion/internal/dataset"
	"bullion/internal/storage"
)

const (
	remBenchFiles = 4
	remBenchRows  = 4096
	remBenchCols  = 4
	// remBenchSpike models an object-store tail: ~4% of reads stall for
	// 10ms (hundreds of times the clean read cost).
	remBenchSpikeRate = 0.04
	remBenchSpikeDur  = 10 * time.Millisecond
	// remBenchHedge is the fixed hedge trigger — far above a clean read,
	// far below a spike.
	remBenchHedge = 500 * time.Microsecond
)

// remBenchBackend builds the dataset once per call on a fresh fault
// backend (cheap: in-memory) so each variant draws its own seeded spike
// sequence.
func remBenchBackend(b *testing.B, spikes bool) *storage.Fault {
	b.Helper()
	fb := storage.NewFault("mem://remotebench")
	fields := make([]Field, remBenchCols)
	for c := range fields {
		fields[c] = Field{Name: []string{"key", "f1", "f2", "f3"}[c], Type: Type{Kind: Int64}}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.Create("remotebench", schema, &dataset.Options{Backend: fb})
	if err != nil {
		b.Fatal(err)
	}
	for f := 0; f < remBenchFiles; f++ {
		cols := make([]ColumnData, remBenchCols)
		for c := range cols {
			vals := make(Int64Data, remBenchRows)
			for r := range vals {
				vals[r] = int64(f*remBenchRows + r + c)
			}
			cols[c] = vals
		}
		batch, err := NewBatch(schema, cols)
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
	ds.Close()
	if spikes {
		fb.SetNetFaults(&storage.NetFaults{
			Seed:      4177,
			SpikeRate: remBenchSpikeRate,
			SpikeDur:  remBenchSpikeDur,
		})
	}
	return fb
}

// benchRemoteScan runs one full scan per iteration and reports tail
// latency percentiles across iterations (p99 needs -benchtime 100x or
// more to be meaningful).
func benchRemoteScan(b *testing.B, spikes, hedged bool) {
	fb := remBenchBackend(b, spikes)
	hedge := remBenchHedge
	if !hedged {
		hedge = storage.DisableHedging
	}
	rb := storage.NewResilient(fb, &storage.ResilienceOptions{
		HedgeDelay: hedge,
	})
	d, err := dataset.Open("remotebench", &dataset.Options{Backend: rb})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	var opts dataset.ScanOptions
	opts.BatchRows = remBenchRows
	opts.ReuseBatches = true
	opts.FileConcurrency = 1 // serial: per-read latency is the axis under test

	// Warm member handles (footer opens) outside the timed region.
	warm, err := d.Scan(opts)
	if err != nil {
		b.Fatal(err)
	}
	warm.Close()

	wantRows := remBenchFiles * remBenchRows
	lats := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		sc, err := d.Scan(opts)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			batch, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += batch.NumRows()
			sc.Recycle(batch)
		}
		sc.Close()
		if rows != wantRows {
			b.Fatalf("scanned %d rows, want %d", rows, wantRows)
		}
		lats = append(lats, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-ns")
	b.ReportMetric(pct(0.99), "p99-ns")
	st := rb.ResilienceStats()
	b.ReportMetric(float64(st.Hedges)/float64(b.N), "hedges/op")
	b.ReportMetric(float64(st.HedgeWins)/float64(b.N), "hedgewins/op")
}

// Scan-level pair: whole-scan wall clock with spikes, hedging off vs
// on. On a noisy shared machine whole-scan percentiles blur; the
// read-level pair below is the acceptance measurement.
func BenchmarkRemoteScanSpikesUnhedged(b *testing.B) { benchRemoteScan(b, true, false) }
func BenchmarkRemoteScanSpikesHedged(b *testing.B)   { benchRemoteScan(b, true, true) }

// Spike-free controls: hedging must cost nothing when the tail is clean
// (the 500µs trigger should rarely fire).
func BenchmarkRemoteScanCleanUnhedged(b *testing.B) { benchRemoteScan(b, false, false) }
func BenchmarkRemoteScanCleanHedged(b *testing.B)   { benchRemoteScan(b, false, true) }

// benchRemoteRead is the closed-loop per-read benchmark: one 64 KiB
// range read per iteration against a spiking backend. The injected
// 20ms spikes put the unhedged p99 at the spike duration; hedging must
// cut it by >=2x (the hedge leg redraws the spike lottery after 1ms).
func benchRemoteRead(b *testing.B, hedged bool) {
	const (
		blobSize = 1 << 20
		readSize = 64 << 10
	)
	data := make([]byte, blobSize)
	for i := range data {
		data[i] = byte(i * 131)
	}
	fb := storage.NewFaultFromState("mem://remoteread", map[string][]byte{"blob": data})
	fb.SetNetFaults(&storage.NetFaults{
		Seed:      4177,
		SpikeRate: 0.05,
		SpikeDur:  50 * time.Millisecond,
	})
	hedge := time.Millisecond
	if !hedged {
		hedge = storage.DisableHedging
	}
	rb := storage.NewResilient(fb, &storage.ResilienceOptions{HedgeDelay: hedge})
	f, _, err := rb.ReadAt("blob")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	p := make([]byte, readSize)
	lats := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i*readSize) % (blobSize - readSize)
		start := time.Now()
		if _, err := f.ReadAt(p, off); err != nil {
			b.Fatal(err)
		}
		lats = append(lats, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-ns")
	b.ReportMetric(pct(0.99), "p99-ns")
	st := rb.ResilienceStats()
	b.ReportMetric(float64(st.Hedges)/float64(b.N), "hedges/op")
	b.ReportMetric(float64(st.HedgeWins)/float64(b.N), "hedgewins/op")
}

// The acceptance pair: BENCH_remote.json records the >=2x p99 gap.
func BenchmarkRemoteReadSpikesUnhedged(b *testing.B) { benchRemoteRead(b, false) }
func BenchmarkRemoteReadSpikesHedged(b *testing.B)   { benchRemoteRead(b, true) }
